/**
 * @file
 * Unit and property tests for the seven paper transformations. Includes
 * the worked examples from the paper's Figures 2-6 as known vectors, and
 * parameterized round-trip sweeps over data distributions, sizes (chunk
 * boundaries, odd tails), and word patterns.
 */
#include <gtest/gtest.h>

#include "transforms/adaptive_k.h"
#include "transforms/bitmap_codec.h"
#include "transforms/transforms.h"
#include "util/bitio.h"
#include "util/bitpack.h"
#include "util/hash.h"

namespace fpc::tf {
namespace {

using EncodeFn = void (*)(ByteSpan, Bytes&);

struct NamedStage {
    const char* name;
    EncodeFn encode;
    EncodeFn decode;
};

const NamedStage kAllStages[] = {
    {"DIFFMS32", DiffmsEncode32, DiffmsDecode32},
    {"DIFFMS64", DiffmsEncode64, DiffmsDecode64},
    {"MPLG32", MplgEncode32, MplgDecode32},
    {"MPLG64", MplgEncode64, MplgDecode64},
    {"BIT32", BitEncode32, BitDecode32},
    {"BIT64", BitEncode64, BitDecode64},
    {"RZE", RzeEncode, RzeDecode},
    {"FCM", FcmEncode, FcmDecode},
    {"RAZE64", RazeEncode64, RazeDecode64},
    {"RARE64", RareEncode64, RareDecode64},
    {"RAZE32", RazeEncode32, RazeDecode32},
    {"RARE32", RareEncode32, RareDecode32},
};

Bytes
MakeBytes(const std::string& kind, size_t n, uint64_t seed)
{
    Rng rng(seed);
    Bytes data(n, std::byte{0});
    if (kind == "zeros") return data;
    if (kind == "random") {
        for (auto& b : data) b = static_cast<std::byte>(rng.Next() & 0xff);
    } else if (kind == "smooth_f32") {
        std::vector<float> v(n / 4);
        float x = 1.0f;
        for (auto& f : v) {
            x += 0.001f * static_cast<float>(rng.NextGaussian());
            f = x;
        }
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 4);
        for (size_t i = v.size() * 4; i < n; ++i) {
            data[i] = static_cast<std::byte>(rng.Next() & 0xff);
        }
    } else if (kind == "smooth_f64") {
        std::vector<double> v(n / 8);
        double x = -5.0;
        for (auto& f : v) {
            x += 0.0001 * rng.NextGaussian();
            f = x;
        }
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 8);
        for (size_t i = v.size() * 8; i < n; ++i) {
            data[i] = static_cast<std::byte>(rng.Next() & 0xff);
        }
    } else if (kind == "repeats_f64") {
        std::vector<double> pool{1.5, -2.25, 3.125, 0.0, 1e300};
        std::vector<double> v(n / 8);
        for (auto& f : v) f = pool[rng.NextBelow(pool.size())];
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 8);
    } else if (kind == "alternating_signs") {
        std::vector<float> v(n / 4);
        for (size_t i = 0; i < v.size(); ++i) {
            v[i] = (i % 2 ? -1.0f : 1.0f) *
                   (1.0f + 0.01f * static_cast<float>(rng.NextDouble()));
        }
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 4);
    } else if (kind == "special_values") {
        std::vector<float> pool{0.0f,
                                -0.0f,
                                std::numeric_limits<float>::infinity(),
                                -std::numeric_limits<float>::infinity(),
                                std::numeric_limits<float>::quiet_NaN(),
                                std::numeric_limits<float>::denorm_min(),
                                std::numeric_limits<float>::max()};
        std::vector<float> v(n / 4);
        for (auto& f : v) f = pool[rng.NextBelow(pool.size())];
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 4);
    }
    return data;
}

class StageRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<size_t, std::string, size_t>> {};

TEST_P(StageRoundTrip, EncodeDecodeIdentity)
{
    auto [stage_idx, kind, size] = GetParam();
    const NamedStage& stage = kAllStages[stage_idx];
    Bytes input = MakeBytes(kind, size, 0xfeed + size);

    Bytes coded;
    stage.encode(ByteSpan(input), coded);
    Bytes output;
    stage.decode(ByteSpan(coded), output);
    ASSERT_EQ(output.size(), input.size()) << stage.name;
    EXPECT_EQ(output, input) << stage.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllStages, StageRoundTrip,
    ::testing::Combine(
        ::testing::Range(size_t{0}, std::size(kAllStages)),
        ::testing::Values("zeros", "random", "smooth_f32", "smooth_f64",
                          "repeats_f64", "alternating_signs",
                          "special_values"),
        ::testing::Values(size_t{0}, size_t{1}, size_t{7}, size_t{8},
                          size_t{513}, size_t{4096}, size_t{16384},
                          size_t{16387})),
    [](const auto& info) {
        return std::string(kAllStages[std::get<0>(info.param)].name) + "_" +
               std::get<1>(info.param) + "_" +
               std::to_string(std::get<2>(info.param));
    });

// ---- Paper Figure 2: DIFFMS worked example ----
TEST(Diffms, PaperFigure2)
{
    // Three consecutive single-precision values with close exponents turn
    // into small magnitude-sign codes with many leading zeros.
    std::vector<float> values{3.1415f, 3.1413f, 3.1416f};
    Bytes input(values.size() * 4);
    std::memcpy(input.data(), values.data(), input.size());

    Bytes coded;
    DiffmsEncode32(ByteSpan(input), coded);
    // Skip the fixed 8-byte size prefix.
    ASSERT_EQ(ReadRaw<uint64_t>(ByteSpan(coded), 0), 12u);
    uint32_t w0 = ReadRaw<uint32_t>(ByteSpan(coded), 8);
    uint32_t w1 = ReadRaw<uint32_t>(ByteSpan(coded), 12);
    uint32_t w2 = ReadRaw<uint32_t>(ByteSpan(coded), 16);

    // First element is preserved (zigzag of the value itself, since the
    // implicit predecessor is 0).
    EXPECT_EQ(w0, ZigzagEncode(BitCastTo<uint32_t>(values[0])));
    // Subsequent codes have many leading zeros (small differences).
    EXPECT_GE(LeadingZeros(w1), 8u);
    EXPECT_GE(LeadingZeros(w2), 8u);
    // The sign lands in the least significant bit: value 1 decreased
    // (negative difference -> LSB 1), value 2 increased (LSB 0).
    EXPECT_EQ(w1 & 1u, 1u);
    EXPECT_EQ(w2 & 1u, 0u);

    Bytes output;
    DiffmsDecode32(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

// ---- Paper Figure 3: MPLG removes common leading zeros ----
TEST(Mplg, EliminatesCommonLeadingZeros)
{
    // 128 words (one 512-byte subchunk), max has 12 leading zeros.
    std::vector<uint32_t> words(128);
    Rng rng(5);
    for (auto& w : words) w = static_cast<uint32_t>(rng.NextBelow(1u << 20));
    words[0] = (1u << 19) | 123;  // ensures the max has exactly 12 lz
    Bytes input(words.size() * 4);
    std::memcpy(input.data(), words.data(), input.size());

    Bytes coded;
    MplgEncode32(ByteSpan(input), coded);
    // Expected: 8-byte size prefix + 1 header byte + 128*20 bits.
    EXPECT_EQ(coded.size(), 8 + 1 + (128 * 20 + 7) / 8);

    Bytes output;
    MplgDecode32(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

TEST(Mplg, EnhancementHandlesFullWidthValues)
{
    // All-ones-ish values: no leading zeros, triggering the extra
    // magnitude-sign conversion (paper Section 3.1 enhancement).
    std::vector<uint32_t> words(128, 0xffffffffu);
    Bytes input(words.size() * 4);
    std::memcpy(input.data(), words.data(), input.size());

    Bytes coded;
    MplgEncode32(ByteSpan(input), coded);
    Bytes output;
    MplgDecode32(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
    // 0xffffffff zigzag-encodes to 1 (31 leading zeros): the subchunk
    // packs to one bit per word instead of 32.
    EXPECT_LT(coded.size(), input.size() / 8);
}

TEST(Mplg, PerSubchunkWidths)
{
    // Two subchunks with very different magnitudes compress with
    // different widths (the paper's subchunk remedy).
    std::vector<uint32_t> words(256);
    for (size_t i = 0; i < 128; ++i) words[i] = 3;          // 2-bit wide
    for (size_t i = 128; i < 256; ++i) words[i] = 0xffffff;  // 24-bit wide
    Bytes input(words.size() * 4);
    std::memcpy(input.data(), words.data(), input.size());

    Bytes coded;
    MplgEncode32(ByteSpan(input), coded);
    size_t expected = 8 + 2 + (128 * 2 + 128 * 24 + 7) / 8;
    EXPECT_EQ(coded.size(), expected);
}

// ---- Paper Figure 4: BIT groups equal bit positions ----
TEST(Bit, TransposesPlanesMsbFirst)
{
    // One word with only the MSB set: after transposition the very first
    // stream bit is 1 and everything else is 0.
    std::vector<uint32_t> words{0x80000000u, 0, 0, 0, 0, 0, 0, 0};
    Bytes input(words.size() * 4);
    std::memcpy(input.data(), words.data(), input.size());

    Bytes coded;
    BitEncode32(ByteSpan(input), coded);
    // 8-byte size prefix + 32 bytes of planes.
    ASSERT_EQ(coded.size(), 8u + 32u);
    EXPECT_EQ(static_cast<uint8_t>(coded[8]), 0x01);  // first plane, bit 0
    for (size_t i = 9; i < coded.size(); ++i) {
        EXPECT_EQ(coded[i], std::byte{0});
    }

    Bytes output;
    BitDecode32(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

// ---- Paper Figure 5: RZE drops zero bytes ----
TEST(Bit, FastAndSlowPathsEmitIdenticalBytes)
{
    // The 32x32 block fast path triggers when nw %% 32 == 0; padding the
    // same data by one word forces the bit-granular fallback. Dropping
    // the last word of the fast output must equal the slow output of the
    // truncated input... instead, simply compare against the gpusim-free
    // definition: encode nw = 128 words (fast) and nw = 127 of the same
    // words (slow) and check the overlapping plane prefixes per plane.
    Rng rng(31);
    std::vector<uint32_t> words(128);
    for (auto& w : words) w = static_cast<uint32_t>(rng.Next());
    Bytes fast_in(words.size() * 4);
    std::memcpy(fast_in.data(), words.data(), fast_in.size());

    Bytes coded;
    BitEncode32(ByteSpan(fast_in), coded);
    // Definition check: bit p*nw + i of the payload == word i bit (31-p).
    ByteSpan payload = ByteSpan(coded).subspan(8);
    const size_t nw = words.size();
    for (unsigned p = 0; p < 32; ++p) {
        for (size_t i = 0; i < nw; ++i) {
            size_t bit = p * nw + i;
            unsigned actual =
                (static_cast<uint8_t>(payload[bit / 8]) >> (bit % 8)) & 1u;
            unsigned expected = (words[i] >> (31 - p)) & 1u;
            ASSERT_EQ(actual, expected) << "p=" << p << " i=" << i;
        }
    }
    Bytes output;
    BitDecode32(ByteSpan(coded), output);
    EXPECT_EQ(output, fast_in);
}

TEST(Rze, DropsZeroBytesAndRestores)
{
    Bytes input(64, std::byte{0});
    input[0] = std::byte{0xaa};
    input[33] = std::byte{0xbb};
    input[63] = std::byte{0xcc};

    Bytes coded;
    RzeEncode(ByteSpan(input), coded);
    EXPECT_LT(coded.size(), input.size());
    Bytes output;
    RzeDecode(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

TEST(Rze, IncompressibleDataSurvives)
{
    Bytes input = MakeBytes("random", 16384, 77);
    Bytes coded;
    RzeEncode(ByteSpan(input), coded);
    Bytes output;
    RzeDecode(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

TEST(BitmapCodec, RecursiveLevels)
{
    // A full chunk's bitmap: 16384 bits = 2048 bytes -> levels of 256, 32,
    // 4 bytes (the paper's 2048 -> 256 -> 32 bit reduction).
    Bytes bitmap(2048, std::byte{0});
    bitmap[100] = std::byte{0xff};
    bitmap[2000] = std::byte{0x0f};

    Bytes coded;
    CompressBitmap(ByteSpan(bitmap), coded);
    // Mostly-constant bitmap compresses far below its raw size.
    EXPECT_LT(coded.size(), 64u);

    ByteReader br{ByteSpan(coded)};
    Bytes restored = DecompressBitmap(br, bitmap.size());
    EXPECT_EQ(restored, bitmap);
    EXPECT_EQ(br.Remaining(), 0u);
}

TEST(BitmapCodec, SizesUnder4BytesStoredVerbatim)
{
    for (size_t n : {size_t{0}, size_t{1}, size_t{4}}) {
        Bytes bitmap(n, std::byte{0x5a});
        Bytes coded;
        CompressBitmap(ByteSpan(bitmap), coded);
        EXPECT_EQ(coded.size(), n);
        ByteReader br{ByteSpan(coded)};
        EXPECT_EQ(DecompressBitmap(br, n), bitmap);
    }
}

// ---- Paper Figure 6: FCM matches repeated values via hashes ----
TEST(Fcm, DetectsRepeatedPattern)
{
    // a b a b c a b : repetitions of (a,b) after enough context should be
    // matched, producing zero values and non-zero distances.
    std::vector<double> pattern{1.5, 2.5};
    std::vector<double> values(512);
    for (size_t i = 0; i < values.size(); ++i) {
        values[i] = pattern[i % 2];
    }
    Bytes input(values.size() * 8);
    std::memcpy(input.data(), values.data(), input.size());

    Bytes coded;
    FcmEncode(ByteSpan(input), coded);
    // Output is exactly 2x input + the 8-byte size prefix.
    EXPECT_EQ(coded.size(), 8 + 2 * input.size());

    // Count matches in the distance array (second half).
    size_t matches = 0;
    for (size_t i = 0; i < values.size(); ++i) {
        uint64_t dist =
            ReadRaw<uint64_t>(ByteSpan(coded), 8 + input.size() + i * 8);
        if (dist != 0) ++matches;
    }
    // Nearly everything after the warm-up should match.
    EXPECT_GT(matches, values.size() / 2);

    Bytes output;
    FcmDecode(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

TEST(Fcm, NoFalseMatchesOnDistinctValues)
{
    std::vector<double> values(256);
    for (size_t i = 0; i < values.size(); ++i) {
        values[i] = static_cast<double>(i) * 1.000001;
    }
    Bytes input(values.size() * 8);
    std::memcpy(input.data(), values.data(), input.size());

    Bytes coded;
    FcmEncode(ByteSpan(input), coded);
    for (size_t i = 0; i < values.size(); ++i) {
        uint64_t dist =
            ReadRaw<uint64_t>(ByteSpan(coded), 8 + input.size() + i * 8);
        EXPECT_EQ(dist, 0u) << "value " << i;
        uint64_t v = ReadRaw<uint64_t>(ByteSpan(coded), 8 + i * 8);
        EXPECT_EQ(v, BitCastTo<uint64_t>(values[i]));
    }
}

TEST(Fcm, RejectsCorruptDistances)
{
    std::vector<double> values{1.0, 2.0, 3.0};
    Bytes input(values.size() * 8);
    std::memcpy(input.data(), values.data(), input.size());
    Bytes coded;
    FcmEncode(ByteSpan(input), coded);
    // Corrupt the first distance to point beyond the beginning.
    uint64_t bad = 5;
    std::memcpy(coded.data() + 8 + input.size(), &bad, 8);
    Bytes output;
    EXPECT_THROW(FcmDecode(ByteSpan(coded), output), CorruptStreamError);
}

// ---- Paper Figure 7: RAZE/RARE adaptive split ----
TEST(AdaptiveK, PicksZeroForRandomData)
{
    // Uniformly random words have ~0 leading zeros: best k is 0 or tiny.
    std::vector<unsigned> hist(65, 0);
    hist[0] = 2048;
    EXPECT_EQ(ChooseAdaptiveK(hist, 2048, 64), 0u);
}

TEST(AdaptiveK, PicksFullWidthForZeroData)
{
    std::vector<unsigned> hist(65, 0);
    hist[64] = 2048;
    EXPECT_EQ(ChooseAdaptiveK(hist, 2048, 64), 64u);
}

TEST(AdaptiveK, SplitsMixedData)
{
    // Half the words have >= 40 leading zeros, half none: the optimum
    // keeps the cheap low bits and drops the top 40 for half the words.
    std::vector<unsigned> hist(65, 0);
    hist[0] = 1024;
    hist[40] = 1024;
    unsigned k = ChooseAdaptiveK(hist, 2048, 64);
    EXPECT_EQ(k, 40u);
}

TEST(Raze, CompressesTopZeroBits)
{
    // Doubles with random mantissa bits but tiny magnitudes: RZE at byte
    // granularity does poorly, RAZE's split shines.
    Rng rng(99);
    std::vector<uint64_t> words(2048);
    for (auto& w : words) w = rng.Next() >> 24;  // 24 leading zeros
    Bytes input(words.size() * 8);
    std::memcpy(input.data(), words.data(), input.size());

    Bytes coded;
    RazeEncode64(ByteSpan(input), coded);
    // ~24 of 64 bits per word removed (bitmap overhead is tiny here).
    EXPECT_LT(coded.size(), input.size() * 45 / 64);
    Bytes output;
    RazeDecode64(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

TEST(Rare, CompressesSharedPrefixes)
{
    // Words sharing their top 32 bits with the previous word.
    Rng rng(101);
    std::vector<uint64_t> words(2048);
    uint64_t top = 0x3ff5550000000000ull;
    for (auto& w : words) w = top | (rng.Next() & 0xffffffffull);
    Bytes input(words.size() * 8);
    std::memcpy(input.data(), words.data(), input.size());

    Bytes coded;
    RareEncode64(ByteSpan(input), coded);
    EXPECT_LT(coded.size(), input.size() * 42 / 64);
    Bytes output;
    RareDecode64(ByteSpan(coded), output);
    EXPECT_EQ(output, input);
}

TEST(Transforms, ComposedPipelineMatchesStagewiseInverse)
{
    // SPratio stage chain applied manually: DIFFMS -> BIT -> RZE, then
    // inverses in reverse order (paper Section 3).
    Bytes input = MakeBytes("smooth_f32", 16384, 2024);
    Bytes s1, s2, s3;
    DiffmsEncode32(ByteSpan(input), s1);
    BitEncode32(ByteSpan(s1), s2);
    RzeEncode(ByteSpan(s2), s3);
    EXPECT_LT(s3.size(), input.size());

    Bytes r2, r1, r0;
    RzeDecode(ByteSpan(s3), r2);
    EXPECT_EQ(r2, s2);
    BitDecode32(ByteSpan(r2), r1);
    EXPECT_EQ(r1, s1);
    DiffmsDecode32(ByteSpan(r1), r0);
    EXPECT_EQ(r0, input);
}

}  // namespace
}  // namespace fpc::tf
