/**
 * @file
 * Unit tests for the utility substrate: bit I/O, varints, zigzag and
 * bit-field helpers, hashing determinism, scans, statistics, and the
 * Pareto front used by the evaluation figures.
 */
#include <gtest/gtest.h>

#include "util/bitio.h"
#include "util/bitpack.h"
#include "util/hash.h"
#include "util/pareto.h"
#include "util/scan.h"
#include "util/stats.h"

namespace fpc {
namespace {

TEST(BitIo, RoundTripMixedWidths)
{
    Bytes buf;
    BitWriter bw(buf);
    bw.Put(0x5, 3);
    bw.Put(0x12345678, 32);
    bw.Put(1, 1);
    bw.Put(0xdeadbeefcafef00dull, 64);
    bw.Put(0, 0);
    bw.Put(0x7f, 7);
    bw.Finish();

    BitReader br{ByteSpan(buf)};
    EXPECT_EQ(br.Get(3), 0x5u);
    EXPECT_EQ(br.Get(32), 0x12345678u);
    EXPECT_EQ(br.Get(1), 1u);
    EXPECT_EQ(br.Get(64), 0xdeadbeefcafef00dull);
    EXPECT_EQ(br.Get(0), 0u);
    EXPECT_EQ(br.Get(7), 0x7fu);
}

TEST(BitIo, ReadPastEndThrows)
{
    Bytes buf;
    BitWriter bw(buf);
    bw.Put(0xff, 8);
    bw.Finish();
    BitReader br{ByteSpan(buf)};
    br.Get(8);
    EXPECT_THROW(br.Get(1), CorruptStreamError);
}

TEST(BitIo, ManySmallFields)
{
    Bytes buf;
    BitWriter bw(buf);
    Rng rng(7);
    std::vector<std::pair<uint64_t, unsigned>> fields;
    for (int i = 0; i < 10000; ++i) {
        unsigned width = static_cast<unsigned>(rng.NextBelow(65));
        uint64_t value = rng.Next();
        if (width < 64) value &= (uint64_t{1} << width) - 1;
        fields.emplace_back(value, width);
        bw.Put(value, width);
    }
    bw.Finish();
    BitReader br{ByteSpan(buf)};
    for (auto [value, width] : fields) {
        ASSERT_EQ(br.Get(width), value);
    }
}

TEST(Varint, RoundTripBoundaries)
{
    Bytes buf;
    ByteWriter wr(buf);
    std::vector<uint64_t> values = {0,       1,       127,        128,
                                    16383,   16384,   UINT32_MAX, UINT64_MAX,
                                    1ull << 56};
    for (uint64_t v : values) wr.PutVarint(v);
    ByteReader br{ByteSpan(buf)};
    for (uint64_t v : values) EXPECT_EQ(br.GetVarint(), v);
}

TEST(Varint, TruncatedThrows)
{
    Bytes buf{std::byte{0x80}};  // continuation bit with no next byte
    ByteReader br{ByteSpan(buf)};
    EXPECT_THROW(br.GetVarint(), CorruptStreamError);
}

TEST(BitIo, ByteReaderNearSizeMaxLengthDoesNotWrap)
{
    // Regression: the bounds check used to be `pos_ + n <= size`, which
    // wraps for an attacker-declared length near SIZE_MAX (e.g. a corrupt
    // varint frame length) and hands subspan an out-of-range count.
    Bytes buf(16);
    ByteReader br{ByteSpan(buf)};
    br.GetBytes(8);
    EXPECT_THROW(br.GetBytes(SIZE_MAX), CorruptStreamError);
    EXPECT_THROW(br.GetBytes(SIZE_MAX - 7), CorruptStreamError);
    EXPECT_THROW(br.GetBytes(9), CorruptStreamError);
    // Failed reads consume nothing; the reader stays usable.
    EXPECT_EQ(br.Remaining(), 8u);
    EXPECT_EQ(br.GetBytes(8).size(), 8u);
    EXPECT_THROW(br.Get<uint32_t>(), CorruptStreamError);
}

TEST(BitIo, BitReaderBoundsDoNotWrapNearEnd)
{
    Bytes buf(8);
    BitReader br{ByteSpan(buf)};
    br.Get(60);
    EXPECT_THROW(br.Get(5), CorruptStreamError);
    EXPECT_EQ(br.Get(4), 0u);  // exactly to the end still works
    EXPECT_THROW(br.Get(1), CorruptStreamError);
}

TEST(BitIo, ReaderErrorsCarryStageAndOffset)
{
    Bytes buf(4);
    ByteReader br{ByteSpan(buf), "TESTSTAGE"};
    br.GetBytes(2);
    try {
        br.Get<uint64_t>();
        FAIL() << "read past end did not throw";
    } catch (const CorruptStreamError& e) {
        EXPECT_STREQ(e.Stage(), "TESTSTAGE");
        EXPECT_EQ(e.Offset(), 2u);
        EXPECT_NE(std::string(e.what()).find("[TESTSTAGE @ byte 2]"),
                  std::string::npos)
            << e.what();
    }
    // Untagged readers report no stage and kNoOffset.
    ByteReader plain{ByteSpan(buf)};
    try {
        plain.GetBytes(5);
        FAIL() << "read past end did not throw";
    } catch (const CorruptStreamError& e) {
        EXPECT_EQ(e.Stage(), nullptr);
        EXPECT_EQ(e.Offset(), 0u);
    }
}

TEST(Zigzag, RoundTrip32And64)
{
    for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{12345},
                      int64_t{-12345}, int64_t{INT32_MAX}, int64_t{INT32_MIN}}) {
        uint32_t u32 = static_cast<uint32_t>(v);
        EXPECT_EQ(ZigzagDecode(ZigzagEncode(u32)), u32);
        uint64_t u64 = static_cast<uint64_t>(v);
        EXPECT_EQ(ZigzagDecode(ZigzagEncode(u64)), u64);
    }
    // Small magnitudes map to small codes (the property DIFFMS needs).
    EXPECT_EQ(ZigzagEncode(uint32_t(1)), 2u);
    EXPECT_EQ(ZigzagEncode(static_cast<uint32_t>(-1)), 1u);
    EXPECT_EQ(ZigzagEncode(uint32_t(0)), 0u);
}

TEST(Zigzag, Exhaustive16BitRange)
{
    for (uint32_t v = 0; v < (1u << 16); ++v) {
        ASSERT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
        uint32_t high = v << 16;
        ASSERT_EQ(ZigzagDecode(ZigzagEncode(high)), high);
    }
}

TEST(BitFields, TopBitsRoundTrip)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.Next();
        unsigned k = static_cast<unsigned>(rng.NextBelow(65));
        uint64_t top = TopBits(v, k);
        uint64_t rebuilt = WithTopBits(v, top, k);
        ASSERT_EQ(rebuilt, v);
    }
}

TEST(BitFields, Transpose32x32ElementwiseAndInvolution)
{
    Rng rng(6);
    uint32_t rows[32], original[32];
    for (auto& r : rows) r = static_cast<uint32_t>(rng.Next());
    std::memcpy(original, rows, sizeof(rows));
    Transpose32x32(rows);
    for (unsigned j = 0; j < 32; ++j) {
        for (unsigned i = 0; i < 32; ++i) {
            ASSERT_EQ((rows[j] >> i) & 1u, (original[i] >> j) & 1u)
                << "i=" << i << " j=" << j;
        }
    }
    Transpose32x32(rows);
    EXPECT_EQ(std::memcmp(rows, original, sizeof(rows)), 0);
}

TEST(Hash, Deterministic)
{
    EXPECT_EQ(FcmContextHash(1, 2, 3), FcmContextHash(1, 2, 3));
    EXPECT_NE(FcmContextHash(1, 2, 3), FcmContextHash(3, 2, 1));
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Scan, ExclusiveAndInclusive)
{
    std::vector<uint32_t> v{3, 1, 4, 1, 5};
    auto ex = v;
    EXPECT_EQ(ExclusiveScan(std::span<uint32_t>(ex)), 14u);
    EXPECT_EQ(ex, (std::vector<uint32_t>{0, 3, 4, 8, 9}));
    auto inc = v;
    EXPECT_EQ(InclusiveScan(std::span<uint32_t>(inc)), 14u);
    EXPECT_EQ(inc, (std::vector<uint32_t>{3, 4, 8, 9, 14}));
}

TEST(Stats, GeometricMean)
{
    EXPECT_DOUBLE_EQ(GeometricMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(GeometricMean({8.0}), 8.0);
    EXPECT_EQ(GeometricMean({}), 0.0);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, GeoMeanOfGeoMeansWeighsDomainsEqually)
{
    // One domain with many files must not dominate.
    std::vector<std::vector<double>> groups{{2, 2, 2, 2, 2, 2, 2, 2}, {8}};
    EXPECT_DOUBLE_EQ(GeoMeanOfGeoMeans(groups), 4.0);
}

TEST(Pareto, FrontIdentification)
{
    std::vector<ScatterPoint> points{
        {"fast-low", 100.0, 1.2},   // on front (fastest)
        {"slow-high", 1.0, 3.0},    // on front (best ratio)
        {"dominated", 50.0, 1.1},   // dominated by fast-low
        {"balanced", 60.0, 2.0},    // on front
    };
    auto front = ParetoFront(points);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(points[front[0]].label, "fast-low");
    EXPECT_EQ(points[front[1]].label, "balanced");
    EXPECT_EQ(points[front[2]].label, "slow-high");
    EXPECT_FALSE(IsOnParetoFront(points, 2));
    EXPECT_TRUE(IsOnParetoFront(points, 0));
}

TEST(Pareto, EqualPointsBothOnFront)
{
    std::vector<ScatterPoint> points{{"a", 1.0, 1.0}, {"b", 1.0, 1.0}};
    EXPECT_EQ(ParetoFront(points).size(), 2u);
}

}  // namespace
}  // namespace fpc
