/**
 * @file
 * fpc::Service scheduler tests (src/service/service.h): byte identity
 * between the service path and the library path on every algorithm x
 * mode x backend, typed backpressure (queue, in-flight cap, token
 * bucket), round-robin fairness under a flooding tenant, arena-pool
 * reuse, per-tenant telemetry, and the shared Errc mapping.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <vector>

#include "core/codec.h"
#include "core/errc.h"
#include "core/executor.h"
#include "core/metrics.h"
#include "core/telemetry.h"
#include "service/service.h"

namespace fpc {
namespace {

/** Deterministic compressible float payload (~13 chunks). */
Bytes
MakePayload(size_t values = 50000, unsigned seed = 1)
{
    std::vector<float> data(values);
    uint32_t state = seed * 2654435761u + 12345u;
    float walk = 1.0f;
    for (size_t i = 0; i < values; ++i) {
        state = state * 1664525u + 1013904223u;
        walk += static_cast<float>(state >> 20) * 1e-6f;
        data[i] = std::sin(static_cast<float>(i) * 0.001f) + walk * 0.01f;
    }
    return Bytes(AsBytes(data).begin(), AsBytes(data).end());
}

ServiceConfig
MakeConfig(int workers, size_t queue_capacity = 256,
           bool start_paused = false, Telemetry* telemetry = nullptr)
{
    ServiceConfig config;
    config.workers = workers;
    config.queue_capacity = queue_capacity;
    config.start_paused = start_paused;
    config.telemetry = telemetry;
    return config;
}

ServiceRequest
CompressRequest(const Bytes& payload, Algorithm algorithm,
                const std::string& executor = "", bool adaptive = false,
                const std::string& tenant = "default")
{
    ServiceRequest request;
    request.verb = ServiceVerb::kCompress;
    request.tenant = tenant;
    request.algorithm = algorithm;
    request.adaptive = adaptive;
    request.executor = executor;
    request.payload = payload;
    return request;
}

TEST(ServiceTest, ByteIdenticalToLibraryOnEveryAlgorithmAndBackend)
{
    const Bytes payload = MakePayload();
    Service service(MakeConfig(2));
    for (const char* backend : {"cpu", "gpusim:4090"}) {
        for (const Algorithm algorithm :
             {Algorithm::kSPspeed, Algorithm::kSPratio, Algorithm::kDPspeed,
              Algorithm::kDPratio}) {
            for (const bool adaptive : {false, true}) {
                Options options;
                options.with_executor(backend).with_threads(1).with_adaptive(
                    adaptive);
                const Bytes library =
                    Compress(algorithm, ByteSpan(payload), options);

                const ServiceResponse compressed = service.Call(
                    CompressRequest(payload, algorithm, backend, adaptive));
                ASSERT_EQ(compressed.status, Errc::kOk)
                    << compressed.error;
                EXPECT_EQ(compressed.payload, library)
                    << AlgorithmName(algorithm) << "@" << backend
                    << (adaptive ? " auto" : " fixed")
                    << ": service bytes diverged from the library";

                ServiceRequest decode;
                decode.verb = ServiceVerb::kDecompress;
                decode.executor = backend;
                decode.payload = compressed.payload;
                const ServiceResponse restored =
                    service.Call(std::move(decode));
                ASSERT_EQ(restored.status, Errc::kOk) << restored.error;
                EXPECT_EQ(restored.payload, payload);
            }
        }
    }
}

TEST(ServiceTest, RangeAndInspectVerbs)
{
    const Bytes payload = MakePayload();
    Service service(MakeConfig(1));
    const ServiceResponse compressed =
        service.Call(CompressRequest(payload, Algorithm::kSPspeed));
    ASSERT_EQ(compressed.status, Errc::kOk);

    ServiceRequest range;
    range.verb = ServiceVerb::kDecompressRange;
    range.payload = compressed.payload;
    range.range_first = 1000;
    range.range_count = 250;
    const ServiceResponse slice = service.Call(std::move(range));
    ASSERT_EQ(slice.status, Errc::kOk) << slice.error;
    ASSERT_EQ(slice.payload.size(), 250 * sizeof(float));
    EXPECT_TRUE(std::equal(slice.payload.begin(), slice.payload.end(),
                           payload.begin() + 1000 * sizeof(float)));

    ServiceRequest inspect;
    inspect.verb = ServiceVerb::kInspect;
    inspect.payload = compressed.payload;
    const ServiceResponse info = service.Call(std::move(inspect));
    ASSERT_EQ(info.status, Errc::kOk);
    const std::string json(reinterpret_cast<const char*>(
                               info.payload.data()),
                           info.payload.size());
    EXPECT_NE(json.find("\"algorithm\": \"SPspeed\""), std::string::npos);
    EXPECT_NE(json.find("\"mode\": \"fixed\""), std::string::npos);
}

TEST(ServiceTest, ExecutionErrorsArriveAsTypedStatusNotExceptions)
{
    Service service(MakeConfig(1));

    ServiceRequest corrupt;
    corrupt.verb = ServiceVerb::kDecompress;
    corrupt.payload = Bytes(256, std::byte{0x5a});
    const ServiceResponse bad = service.Call(std::move(corrupt));
    EXPECT_EQ(bad.status, Errc::kCorrupt);
    EXPECT_FALSE(bad.error.empty());
    EXPECT_TRUE(bad.payload.empty());

    const ServiceResponse unknown = service.Call(
        CompressRequest(MakePayload(4096), Algorithm::kSPspeed, "tpu"));
    EXPECT_EQ(unknown.status, Errc::kUsage);

    EXPECT_GE(service.counters().failed, 2u);
}

TEST(ServiceTest, ControlVerbsAreNotSchedulable)
{
    Service service(MakeConfig(1));
    ServiceRequest stats;
    stats.verb = ServiceVerb::kStats;
    EXPECT_THROW(service.Submit(std::move(stats)), UsageError);
    ServiceRequest shutdown;
    shutdown.verb = ServiceVerb::kShutdown;
    EXPECT_THROW(service.Submit(std::move(shutdown)), UsageError);
}

TEST(ServiceTest, QueueFullRejectsWithTypedBusy)
{
    // Paused service: submissions stack up deterministically.
    Service service(MakeConfig(1, 4, true));
    const Bytes payload = MakePayload(4096);
    std::vector<std::future<ServiceResponse>> accepted;
    for (int i = 0; i < 4; ++i) {
        accepted.push_back(
            service.Submit(CompressRequest(payload, Algorithm::kSPspeed)));
    }
    try {
        service.Submit(CompressRequest(payload, Algorithm::kSPspeed));
        FAIL() << "5th submission into a 4-deep queue did not throw";
    } catch (const ServiceBusy& busy) {
        EXPECT_EQ(busy.reason(), ServiceBusy::Reason::kQueueFull);
    }
    EXPECT_EQ(service.counters().rejected_queue_full, 1u);
    service.Resume();
    for (auto& future : accepted) {
        EXPECT_EQ(future.get().status, Errc::kOk);
    }
}

TEST(ServiceTest, InFlightCapThrottlesOneTenantOnly)
{
    Service service(MakeConfig(1, 64, true));
    TenantQos capped;
    capped.max_in_flight = 8;
    service.SetTenantQos("flooder", capped);
    const Bytes payload = MakePayload(4096);

    std::vector<std::future<ServiceResponse>> accepted;
    size_t rejected = 0;
    for (int i = 0; i < 20; ++i) {
        try {
            accepted.push_back(service.Submit(CompressRequest(
                payload, Algorithm::kSPspeed, "", false, "flooder")));
        } catch (const ServiceBusy& busy) {
            EXPECT_EQ(busy.reason(), ServiceBusy::Reason::kInFlight);
            ++rejected;
        }
    }
    EXPECT_EQ(accepted.size(), 8u);
    EXPECT_EQ(rejected, 12u);

    // The other tenant is not at its cap: all of its submissions land.
    for (int i = 0; i < 5; ++i) {
        accepted.push_back(service.Submit(CompressRequest(
            payload, Algorithm::kSPspeed, "", false, "polite")));
    }
    service.Resume();
    for (auto& future : accepted) {
        EXPECT_EQ(future.get().status, Errc::kOk);
    }
    EXPECT_EQ(service.counters().rejected_in_flight, 12u);
}

TEST(ServiceTest, TokenBucketThrottlesByPayloadBytes)
{
    Service service(MakeConfig(1, 256, true));
    const Bytes payload = MakePayload(4096);  // 16 KiB
    // Burst covers exactly three requests; the refill rate is negligible
    // on the test's timescale.
    TenantQos metered;
    metered.rate_bytes_per_sec = 1;
    metered.burst_bytes = 3 * payload.size();
    service.SetTenantQos("metered", metered);
    std::vector<std::future<ServiceResponse>> accepted;
    for (int i = 0; i < 3; ++i) {
        accepted.push_back(service.Submit(CompressRequest(
            payload, Algorithm::kSPspeed, "", false, "metered")));
    }
    try {
        service.Submit(CompressRequest(payload, Algorithm::kSPspeed, "",
                                       false, "metered"));
        FAIL() << "4th submission past the burst did not throw";
    } catch (const ServiceBusy& busy) {
        EXPECT_EQ(busy.reason(), ServiceBusy::Reason::kThrottled);
    }
    EXPECT_EQ(service.counters().rejected_throttled, 1u);
    service.Resume();
    for (auto& future : accepted) {
        EXPECT_EQ(future.get().status, Errc::kOk);
    }
}

TEST(ServiceTest, RoundRobinKeepsFloodedTenantFromStarvingAnother)
{
    if (!kTelemetryEnabled) {
        GTEST_SKIP() << "per-tenant counters need FPC_TELEMETRY=1";
    }
    // One worker, paused: stage a 30-deep flood from A, then 5 requests
    // from B. Round-robin dispatch alternates A,B,A,B..., so B's last
    // request completes while A still holds most of its backlog. The
    // requests run the ratio pipeline over ~200 KB each, so the
    // remaining backlog is many milliseconds of runway — the snapshot
    // below races the worker by microseconds only.
    Service service(MakeConfig(1, 64, true));
    const Bytes payload = MakePayload();
    std::vector<std::future<ServiceResponse>> flood;
    for (int i = 0; i < 30; ++i) {
        flood.push_back(service.Submit(
            CompressRequest(payload, Algorithm::kSPratio, "", false, "A")));
    }
    std::vector<std::future<ServiceResponse>> polite;
    for (int i = 0; i < 5; ++i) {
        polite.push_back(service.Submit(
            CompressRequest(payload, Algorithm::kSPratio, "", false, "B")));
    }
    service.Resume();
    for (auto& future : polite) {
        EXPECT_EQ(future.get().status, Errc::kOk);
    }
    // B is done; under strict alternation A has executed ~5-6 of 30.
    // Allow slack for the worker racing ahead between .get() calls.
    const TelemetrySnapshot snap = service.telemetry().Snapshot();
    ASSERT_EQ(snap.tenants.at("B").requests, 5u);
    EXPECT_LE(snap.tenants.at("A").requests, 15u)
        << "flooding tenant starved the polite tenant";
    for (auto& future : flood) {
        EXPECT_EQ(future.get().status, Errc::kOk);
    }
}

TEST(ServiceTest, ArenaPoolWarmsUpAndPlateaus)
{
    Service service(MakeConfig(1));
    const Bytes payload = MakePayload();
    for (int i = 0; i < 10; ++i) {
        const ServiceResponse response =
            service.Call(CompressRequest(payload, Algorithm::kSPratio));
        ASSERT_EQ(response.status, Errc::kOk);
    }
    // Every request leased from the shared pool; after the first request
    // warmed it, later requests reuse instead of constructing cold.
    EXPECT_GE(service.arenas().Leases(), 10u);
    EXPECT_LE(service.arenas().Created(), 2u)
        << "arena pool kept constructing cold arenas instead of reusing";
}

TEST(ServiceTest, PerTenantTelemetryLandsInTheServiceBlock)
{
    if (!kTelemetryEnabled) {
        GTEST_SKIP() << "per-tenant counters need FPC_TELEMETRY=1";
    }
    Telemetry sink;
    {
        Service service(MakeConfig(2, 256, false, &sink));
        const Bytes payload = MakePayload(8192);
        for (int i = 0; i < 3; ++i) {
            ASSERT_EQ(service
                          .Call(CompressRequest(payload,
                                                Algorithm::kSPspeed, "",
                                                false, "climate"))
                          .status,
                      Errc::kOk);
        }
        ASSERT_EQ(service
                      .Call(CompressRequest(payload, Algorithm::kDPspeed,
                                            "", false, "physics"))
                      .status,
                  Errc::kOk);
    }
    const TelemetrySnapshot snap = sink.Snapshot();
    ASSERT_EQ(snap.tenants.size(), 2u);
    const TenantStats& climate = snap.tenants.at("climate");
    EXPECT_EQ(climate.requests, 3u);
    EXPECT_EQ(climate.rejected, 0u);
    EXPECT_EQ(climate.failed, 0u);
    EXPECT_EQ(climate.bytes_in, 3u * 8192 * sizeof(float));
    EXPECT_GT(climate.bytes_out, 0u);
    EXPECT_EQ(climate.latency.count, 3u);
    EXPECT_GT(climate.latency.P99(), 0u);
    EXPECT_EQ(snap.tenants.at("physics").requests, 1u);

    const std::string json = ToJson(snap);
    EXPECT_NE(json.find("\"service\": {\"tenants\": {\"climate\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"physics\""), std::string::npos);
    EXPECT_NE(json.find("\"request\": {\"count\": 3"), std::string::npos);
}

TEST(ServiceTest, LiveMetricsCountersTrackRequests)
{
    // The scheduler feeds the process-global registry, so assert on
    // deltas: other tests in this binary (and earlier requests in this
    // one) have already moved the absolute values.
    MetricsRegistry& registry = MetricsRegistry::Global();
    Counter* ok_compress = registry.GetCounter(
        "fpc_service_requests_total",
        "Completed requests by tenant, verb, and status.",
        {{"tenant", "metrics-tenant"},
         {"verb", "compress"},
         {"status", "ok"}});
    Counter* bytes_in = registry.GetCounter(
        "fpc_service_bytes_total",
        "Request payload and response bytes by tenant and direction.",
        {{"tenant", "metrics-tenant"}, {"direction", "in"}});
    Histogram* request_hist = registry.GetHistogram(
        "fpc_service_request_ns",
        "Per-request end-to-end latency (submit to completion), "
        "nanoseconds.");
    const uint64_t ok_before = ok_compress->Value();
    const uint64_t bytes_before = bytes_in->Value();
    const uint64_t hist_before = request_hist->Count();

    const Bytes payload = MakePayload(20000);
    Service service(MakeConfig(2));
    constexpr size_t kRequests = 3;
    for (size_t i = 0; i < kRequests; ++i) {
        const ServiceResponse response = service.Call(CompressRequest(
            payload, Algorithm::kSPspeed, "", false, "metrics-tenant"));
        ASSERT_EQ(response.status, Errc::kOk) << response.error;
    }
    service.Stop();

    EXPECT_EQ(ok_compress->Value() - ok_before, kRequests);
    EXPECT_EQ(bytes_in->Value() - bytes_before,
              kRequests * payload.size());
    EXPECT_GE(request_hist->Count() - hist_before, kRequests);

    // The gauges are levels, not totals: everything submitted has
    // completed, so both must read zero for this idle scheduler.
    EXPECT_EQ(registry
                  .GetGauge("fpc_service_queue_depth",
                            "Requests accepted but not yet dispatched "
                            "to a worker.")
                  ->Value(),
              0);
    EXPECT_EQ(registry
                  .GetGauge("fpc_service_in_flight",
                            "Requests currently executing.")
                  ->Value(),
              0);
}

TEST(ServiceTest, LiveMetricsCountRejections)
{
    MetricsRegistry& registry = MetricsRegistry::Global();
    Counter* rejected = registry.GetCounter(
        "fpc_service_rejected_total",
        "Requests rejected at admission by tenant and reason.",
        {{"tenant", "rejected-tenant"}, {"reason", "in-flight"}});
    const uint64_t before = rejected->Value();

    // One worker, held back, and an in-flight cap of 1: the second
    // submission must bounce and land on the reject counter.
    Service service(MakeConfig(1, 256, /*start_paused=*/true));
    TenantQos qos;
    qos.max_in_flight = 1;
    service.SetTenantQos("rejected-tenant", qos);

    const Bytes payload = MakePayload(20000);
    auto first = service.Submit(CompressRequest(
        payload, Algorithm::kSPspeed, "", false, "rejected-tenant"));
    EXPECT_THROW(
        (void)service.Submit(CompressRequest(
            payload, Algorithm::kSPspeed, "", false, "rejected-tenant")),
        ServiceBusy);
    service.Resume();
    EXPECT_EQ(first.get().status, Errc::kOk);
    service.Stop();

    EXPECT_EQ(rejected->Value() - before, 1u);
}

TEST(ServiceTest, SubmitAfterStopIsAUsageError)
{
    Service service(MakeConfig(1));
    service.Stop();
    EXPECT_THROW(
        service.Submit(CompressRequest(MakePayload(64),
                                       Algorithm::kSPspeed)),
        UsageError);
}

TEST(ServiceTest, StopDrainsAStagedBacklog)
{
    std::vector<std::future<ServiceResponse>> staged;
    {
        Service service(MakeConfig(2, 256, true));
        const Bytes payload = MakePayload(8192);
        for (int i = 0; i < 6; ++i) {
            staged.push_back(service.Submit(
                CompressRequest(payload, Algorithm::kSPspeed)));
        }
        // Destruction stops the service, which must drain — never drop —
        // accepted work, even work that dispatch never started.
    }
    for (auto& future : staged) {
        EXPECT_EQ(future.get().status, Errc::kOk);
    }
}

TEST(ErrcTest, ExitCodesAndNamesMatchTheWireContract)
{
    EXPECT_EQ(ExitCodeOf(Errc::kOk), 0);
    EXPECT_EQ(ExitCodeOf(Errc::kInternal), 1);
    EXPECT_EQ(ExitCodeOf(Errc::kUsage), 2);
    EXPECT_EQ(ExitCodeOf(Errc::kCorrupt), 3);
    EXPECT_EQ(ExitCodeOf(Errc::kBusy), 4);
    EXPECT_STREQ(ErrcName(Errc::kOk), "ok");
    EXPECT_STREQ(ErrcName(Errc::kBusy), "busy");
}

TEST(ErrcTest, CurrentErrcClassifiesTheActiveException)
{
    auto classify = [](auto&& thrower) {
        try {
            thrower();
        } catch (...) {
            return CurrentErrc();
        }
        return Errc::kOk;
    };
    EXPECT_EQ(classify([] { throw UsageError("x"); }), Errc::kUsage);
    EXPECT_EQ(classify([] { throw CorruptStreamError("x"); }),
              Errc::kCorrupt);
    EXPECT_EQ(classify([] {
        throw ServiceBusy(ServiceBusy::Reason::kQueueFull, "x");
    }),
              Errc::kBusy);
    EXPECT_EQ(classify([] { throw std::runtime_error("x"); }),
              Errc::kInternal);
    EXPECT_STREQ(ServiceBusyReasonName(ServiceBusy::Reason::kThrottled),
                 "throttled");
}

}  // namespace
}  // namespace fpc
