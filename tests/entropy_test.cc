/**
 * @file
 * Tests for the entropy-coding and string-transform substrates used by
 * the baseline compressors: canonical Huffman, rANS, the adaptive binary
 * range coder, BWT + MTF + RLE, and the LZ match finder.
 */
#include <gtest/gtest.h>

#include "util/bitio.h"
#include "util/bwt.h"
#include "util/hash.h"
#include "util/huffman.h"
#include "util/lz.h"
#include "util/range_coder.h"
#include "util/rans.h"

namespace fpc {
namespace {

Bytes
MakeInput(const std::string& kind, size_t n, uint64_t seed)
{
    Rng rng(seed);
    Bytes data(n);
    if (kind == "random") {
        for (auto& b : data) b = static_cast<std::byte>(rng.Next() & 0xff);
    } else if (kind == "skewed") {
        for (auto& b : data) {
            uint64_t r = rng.NextBelow(100);
            b = static_cast<std::byte>(r < 70 ? 'a' : (r < 90 ? 'b' : r));
        }
    } else if (kind == "zeros") {
        // all zero already
    } else if (kind == "text") {
        const std::string pattern = "the quick brown fox jumps over ";
        for (size_t i = 0; i < n; ++i) {
            data[i] = static_cast<std::byte>(pattern[i % pattern.size()]);
        }
    } else if (kind == "runs") {
        size_t i = 0;
        while (i < n) {
            std::byte v = static_cast<std::byte>(rng.Next() & 0xff);
            size_t run = 1 + rng.NextBelow(300);
            for (size_t k = 0; k < run && i < n; ++k) data[i++] = v;
        }
    }
    return data;
}

class EntropyRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(EntropyRoundTrip, Huffman)
{
    auto [kind, n] = GetParam();
    Bytes input = MakeInput(kind, n, 11);
    Bytes coded;
    HuffmanEncode(ByteSpan(input), coded);
    ByteReader br{ByteSpan(coded)};
    Bytes output;
    HuffmanDecode(br, input.size(), output);
    EXPECT_EQ(input, output);
}

TEST_P(EntropyRoundTrip, Rans)
{
    auto [kind, n] = GetParam();
    Bytes input = MakeInput(kind, n, 13);
    Bytes coded;
    RansEncode(ByteSpan(input), coded);
    ByteReader br{ByteSpan(coded)};
    Bytes output;
    RansDecode(br, output);
    EXPECT_EQ(input, output);
}

TEST_P(EntropyRoundTrip, Bwt)
{
    auto [kind, n] = GetParam();
    Bytes input = MakeInput(kind, n, 17);
    Bytes bwt;
    uint32_t primary = BwtEncode(ByteSpan(input), bwt);
    ASSERT_EQ(bwt.size(), input.size());
    Bytes output;
    BwtDecode(ByteSpan(bwt), primary, output);
    EXPECT_EQ(input, output);
}

TEST_P(EntropyRoundTrip, MtfAndRle)
{
    auto [kind, n] = GetParam();
    Bytes input = MakeInput(kind, n, 19);
    Bytes mtf, back;
    MtfEncode(ByteSpan(input), mtf);
    MtfDecode(ByteSpan(mtf), back);
    EXPECT_EQ(input, back);

    Bytes rle, restored;
    Rle4Encode(ByteSpan(input), rle);
    Rle4Decode(ByteSpan(rle), restored);
    EXPECT_EQ(input, restored);
}

TEST_P(EntropyRoundTrip, LzParseCoversInput)
{
    auto [kind, n] = GetParam();
    Bytes input = MakeInput(kind, n, 23);
    LzParams params;
    std::vector<LzToken> tokens = LzParse(ByteSpan(input), params);

    Bytes literals;
    size_t pos = 0;
    for (const LzToken& t : tokens) {
        AppendBytes(literals, ByteSpan(input).subspan(pos, t.literal_len));
        pos += t.literal_len + t.match_len;
    }
    EXPECT_EQ(pos, input.size());

    Bytes output;
    LzReconstruct(tokens, ByteSpan(literals), output);
    EXPECT_EQ(input, output);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EntropyRoundTrip,
    ::testing::Combine(::testing::Values("random", "skewed", "zeros", "text",
                                         "runs"),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{255},
                                         size_t{4096}, size_t{70000})),
    [](const auto& info) {
        return std::get<0>(info.param) + "_" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Huffman, SingleSymbolInput)
{
    Bytes input(100, std::byte{0x42});
    Bytes coded;
    HuffmanEncode(ByteSpan(input), coded);
    ByteReader br{ByteSpan(coded)};
    Bytes output;
    HuffmanDecode(br, 100, output);
    EXPECT_EQ(input, output);
}

TEST(Huffman, KraftValidationRejectsOverfullTable)
{
    std::array<uint8_t, kHuffSymbols> lengths{};
    for (size_t s = 0; s < 4; ++s) lengths[s] = 1;  // 4 codes of length 1
    EXPECT_THROW(HuffmanDecoder dec(lengths), CorruptStreamError);
}

TEST(Huffman, LengthsSatisfyKraft)
{
    // A highly skewed distribution must still produce a valid code.
    std::array<uint64_t, kHuffSymbols> freqs{};
    uint64_t f = 1;
    for (size_t s = 0; s < kHuffSymbols; ++s) {
        freqs[s] = f;
        f = std::min<uint64_t>(f * 2, uint64_t{1} << 40);
    }
    auto lengths = HuffmanCodeLengths(freqs);
    uint64_t kraft = 0;
    for (auto l : lengths) {
        ASSERT_LE(l, kHuffMaxCodeLen);
        ASSERT_GE(l, 1);
        kraft += uint64_t{1} << (kHuffMaxCodeLen - l);
    }
    EXPECT_LE(kraft, uint64_t{1} << kHuffMaxCodeLen);
}

TEST(Rans, NormalizationSumsToScale)
{
    Rng rng(31);
    std::array<uint64_t, 256> freqs{};
    size_t total = 0;
    for (auto& f : freqs) {
        f = rng.NextBelow(1000);
        total += f;
    }
    auto norm = NormalizeFreqs(freqs, total);
    uint32_t sum = 0;
    for (int s = 0; s < 256; ++s) {
        sum += norm[s];
        if (freqs[s] > 0) {
            EXPECT_GE(norm[s], 1u);
        } else {
            EXPECT_EQ(norm[s], 0u);
        }
    }
    EXPECT_EQ(sum, kRansProbScale);
}

TEST(RangeCoder, BitRoundTrip)
{
    Rng rng(37);
    std::vector<bool> bits;
    for (int i = 0; i < 20000; ++i) {
        bits.push_back(rng.NextBelow(100) < 30);
    }
    Bytes coded;
    {
        RangeEncoder enc(coded);
        BitModel model;
        for (bool b : bits) enc.EncodeBit(model, b);
        enc.Finish();
    }
    // Skewed bits must compress below 1 bit per symbol.
    EXPECT_LT(coded.size(), bits.size() / 8);
    RangeDecoder dec{ByteSpan(coded)};
    BitModel model;
    for (bool b : bits) ASSERT_EQ(dec.DecodeBit(model), b);
}

TEST(RangeCoder, DirectBitsRoundTrip)
{
    Rng rng(41);
    std::vector<std::pair<uint32_t, unsigned>> fields;
    Bytes coded;
    {
        RangeEncoder enc(coded);
        for (int i = 0; i < 5000; ++i) {
            unsigned width = 1 + static_cast<unsigned>(rng.NextBelow(16));
            uint32_t value =
                static_cast<uint32_t>(rng.Next()) & ((1u << width) - 1);
            fields.emplace_back(value, width);
            enc.EncodeDirect(value, width);
        }
        enc.Finish();
    }
    RangeDecoder dec{ByteSpan(coded)};
    for (auto [value, width] : fields) {
        ASSERT_EQ(dec.DecodeDirect(width), value);
    }
}

TEST(RangeCoder, MixedModelAndDirect)
{
    Rng rng(43);
    Bytes coded;
    std::vector<uint32_t> values;
    {
        RangeEncoder enc(coded);
        BitModel model;
        for (int i = 0; i < 3000; ++i) {
            uint32_t v = static_cast<uint32_t>(rng.NextBelow(256));
            values.push_back(v);
            enc.EncodeBit(model, v & 1);
            enc.EncodeDirect(v >> 1, 7);
        }
        enc.Finish();
    }
    RangeDecoder dec{ByteSpan(coded)};
    BitModel model;
    for (uint32_t v : values) {
        uint32_t low = dec.DecodeBit(model) ? 1 : 0;
        uint32_t high = dec.DecodeDirect(7);
        ASSERT_EQ((high << 1) | low, v);
    }
}

TEST(Bwt, KnownVector)
{
    // "banana" rotations sorted: abanan, anaban, ananab(?) — verify
    // round-trip rather than a fixed string (cyclic BWT convention).
    std::string s = "banana";
    Bytes input(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        input[i] = static_cast<std::byte>(s[i]);
    }
    Bytes bwt;
    uint32_t primary = BwtEncode(ByteSpan(input), bwt);
    Bytes output;
    BwtDecode(ByteSpan(bwt), primary, output);
    EXPECT_EQ(input, output);
}

TEST(Bwt, AllEqualBytes)
{
    Bytes input(1000, std::byte{'x'});
    Bytes bwt;
    uint32_t primary = BwtEncode(ByteSpan(input), bwt);
    Bytes output;
    BwtDecode(ByteSpan(bwt), primary, output);
    EXPECT_EQ(input, output);
}

TEST(Bwt, BadPrimaryThrows)
{
    Bytes bwt(10, std::byte{'a'});
    Bytes out;
    EXPECT_THROW(BwtDecode(ByteSpan(bwt), 10, out), CorruptStreamError);
}

TEST(Lz, MatchOffsetsWithinWindow)
{
    Bytes input = MakeInput("text", 100000, 47);
    LzParams params;
    params.window = 4096;
    auto tokens = LzParse(ByteSpan(input), params);
    for (const LzToken& t : tokens) {
        if (t.match_len > 0) {
            EXPECT_LE(t.offset, params.window);
            EXPECT_GE(t.match_len, params.min_match);
        }
    }
}

TEST(Lz, CopyMatchHandlesOverlap)
{
    Bytes out{std::byte{'a'}, std::byte{'b'}};
    LzCopyMatch(out, 2, 6);  // overlapping copy: abababab
    ASSERT_EQ(out.size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(out[i], static_cast<std::byte>(i % 2 ? 'b' : 'a'));
    }
    EXPECT_THROW(LzCopyMatch(out, 100, 1), CorruptStreamError);
    EXPECT_THROW(LzCopyMatch(out, 0, 1), CorruptStreamError);
}

}  // namespace
}  // namespace fpc
