/**
 * @file
 * SIMD kernel layer tests (util/simd.h, util/cpu_features.h):
 *
 *  - per-kernel equivalence: every compiled-and-supported ISA table must
 *    reproduce the scalar reference byte for byte on randomized buffers,
 *    including empty, sub-vector, and odd-tail sizes;
 *  - the ISA golden matrix: the PR 2 golden container checksums must
 *    hold under every kernel level on the cpu backend (Options::with_isa)
 *    and on the gpusim backends (which follow the process default), and
 *    containers must decode across levels — the wire format is pinned by
 *    the scalar semantics, so any divergence here is a kernel bug, not a
 *    format change;
 *  - selection plumbing: IsaName/ParseIsa round trips, UsageError on
 *    unknown or unavailable levels, CompiledIsaLevels contents.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/codec.h"
#include "core/executor.h"
#include "util/hash.h"
#include "util/simd.h"

namespace fpc {
namespace {

using simd::Isa;

/** All enum levels; individual tests skip the unavailable ones. */
constexpr Isa kAllLevels[] = {Isa::kScalar, Isa::kAvx2, Isa::kAvx512};

/** Restores the process-wide dispatch level on scope exit, so a failing
 *  assertion cannot leak a forced level into later tests. */
class ScopedDefaultIsa {
 public:
    explicit ScopedDefaultIsa(Isa isa) : saved_(simd::DefaultIsa())
    {
        simd::SetDefaultIsa(isa);
    }
    ~ScopedDefaultIsa() { simd::SetDefaultIsa(saved_); }

 private:
    Isa saved_;
};

Bytes
RandomBytes(Rng& rng, size_t n)
{
    Bytes data(n);
    for (auto& b : data) b = static_cast<std::byte>(rng.Next());
    return data;
}

/** Mostly-zero / mostly-repeating buffer: exercises the sparse branches
 *  of the scan kernels that uniform random bytes never hit. */
Bytes
SparseBytes(Rng& rng, size_t n)
{
    Bytes data(n);
    for (auto& b : data) {
        b = (rng.NextBelow(8) == 0) ? static_cast<std::byte>(rng.Next())
                                    : std::byte{0};
    }
    return data;
}

/** The buffer sizes every kernel is probed at: empty, single element,
 *  below / at / above each vector width, and a pipeline-typical extent
 *  with an odd tail. */
constexpr size_t kSizes[] = {0,  1,  7,   8,   15,  31,   32,  33,
                             63, 64, 100, 255, 256, 1000, 4098};

TEST(SimdKernels, TransposeMatchesScalarAndDefinition)
{
    Rng rng(0x7a5);
    for (int iter = 0; iter < 100; ++iter) {
        uint32_t original[32];
        for (auto& w : original) w = static_cast<uint32_t>(rng.Next());

        uint32_t reference[32];
        std::memcpy(reference, original, sizeof(original));
        simd::ScalarKernels().transpose32x32(reference);
        for (unsigned j = 0; j < 32; ++j) {
            for (unsigned i = 0; i < 32; ++i) {
                ASSERT_EQ((reference[j] >> i) & 1u,
                          (original[i] >> j) & 1u)
                    << "scalar transpose is not the true transpose at "
                    << "row " << i << " column " << j;
            }
        }

        for (Isa isa : kAllLevels) {
            if (!simd::IsaAvailable(isa)) continue;
            uint32_t m[32];
            std::memcpy(m, original, sizeof(original));
            simd::Kernels(isa).transpose32x32(m);
            ASSERT_EQ(std::memcmp(m, reference, sizeof(m)), 0)
                << simd::IsaName(isa) << " transpose diverged";
            simd::Kernels(isa).transpose32x32(m);
            ASSERT_EQ(std::memcmp(m, original, sizeof(m)), 0)
                << simd::IsaName(isa) << " transpose is not an involution";
        }
    }
}

TEST(SimdKernels, NonzeroScanScatterMatchScalar)
{
    Rng rng(0x11);
    for (size_t n : kSizes) {
        for (bool sparse : {false, true}) {
            const Bytes in = sparse ? SparseBytes(rng, n)
                                    : RandomBytes(rng, n);
            Bytes ref_bitmap((n + 7) / 8);
            Bytes ref_gathered(n);
            const size_t ref_count = simd::ScalarKernels().nonzero_scan(
                in.data(), n, ref_bitmap.data(), ref_gathered.data());
            ref_gathered.resize(ref_count);

            for (Isa isa : kAllLevels) {
                if (!simd::IsaAvailable(isa)) continue;
                Bytes bitmap((n + 7) / 8);
                Bytes gathered(n);
                const size_t count = simd::Kernels(isa).nonzero_scan(
                    in.data(), n, bitmap.data(), gathered.data());
                gathered.resize(count);
                EXPECT_EQ(count, ref_count) << simd::IsaName(isa);
                EXPECT_EQ(bitmap, ref_bitmap)
                    << simd::IsaName(isa) << " n=" << n;
                EXPECT_EQ(gathered, ref_gathered)
                    << simd::IsaName(isa) << " n=" << n;

                Bytes rebuilt(n);
                const size_t consumed = simd::Kernels(isa).nonzero_scatter(
                    ref_bitmap.data(), n, ref_gathered.data(),
                    rebuilt.data());
                EXPECT_EQ(consumed, ref_count) << simd::IsaName(isa);
                EXPECT_EQ(rebuilt, in)
                    << simd::IsaName(isa) << " scatter n=" << n;
            }
        }
    }
}

TEST(SimdKernels, DiffScanExpandMatchScalar)
{
    Rng rng(0x22);
    for (size_t n : kSizes) {
        for (bool sparse : {false, true}) {
            Bytes in = sparse ? SparseBytes(rng, n) : RandomBytes(rng, n);
            if (sparse && n > 8) {
                // Long runs of one value: the fast whole-mask-byte paths.
                std::memset(in.data(), 0x5a, n / 2);
            }
            Bytes ref_bits((n + 7) / 8);
            Bytes ref_kept(n);
            const size_t ref_count = simd::ScalarKernels().diff_scan(
                in.data(), n, ref_bits.data(), ref_kept.data());
            ref_kept.resize(ref_count);

            for (Isa isa : kAllLevels) {
                if (!simd::IsaAvailable(isa)) continue;
                Bytes bits((n + 7) / 8);
                Bytes kept(n);
                const size_t count = simd::Kernels(isa).diff_scan(
                    in.data(), n, bits.data(), kept.data());
                kept.resize(count);
                EXPECT_EQ(count, ref_count) << simd::IsaName(isa);
                EXPECT_EQ(bits, ref_bits)
                    << simd::IsaName(isa) << " n=" << n;
                EXPECT_EQ(kept, ref_kept)
                    << simd::IsaName(isa) << " n=" << n;

                Bytes rebuilt(n);
                const size_t consumed = simd::Kernels(isa).diff_expand(
                    ref_bits.data(), n, ref_kept.data(), rebuilt.data());
                EXPECT_EQ(consumed, ref_count) << simd::IsaName(isa);
                EXPECT_EQ(rebuilt, in)
                    << simd::IsaName(isa) << " expand n=" << n;
            }
        }
    }
}

TEST(SimdKernels, PredicateBitmapsMatchScalar)
{
    Rng rng(0x33);
    for (size_t nw : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                      size_t{63}, size_t{64}, size_t{100}, size_t{2049}}) {
        const Bytes sparse = SparseBytes(rng, nw * 8);
        const Bytes dense = RandomBytes(rng, nw * 8);
        for (const Bytes& in : {sparse, dense}) {
            for (unsigned k : {1u, 7u, 13u, 16u, 32u, 48u, 63u, 64u}) {
                Bytes ref_top((nw + 7) / 8);
                const size_t ref_top_count =
                    simd::ScalarKernels().top_bitmap64(in.data(), nw, k,
                                                       ref_top.data());
                Bytes ref_match((nw + 7) / 8);
                const size_t ref_match_count =
                    simd::ScalarKernels().match_bitmap64(in.data(), nw, k,
                                                         ref_match.data());
                for (Isa isa : kAllLevels) {
                    if (!simd::IsaAvailable(isa)) continue;
                    Bytes top((nw + 7) / 8);
                    EXPECT_EQ(simd::Kernels(isa).top_bitmap64(
                                  in.data(), nw, k, top.data()),
                              ref_top_count)
                        << simd::IsaName(isa) << " nw=" << nw << " k=" << k;
                    EXPECT_EQ(top, ref_top)
                        << simd::IsaName(isa) << " nw=" << nw << " k=" << k;
                    Bytes match((nw + 7) / 8);
                    EXPECT_EQ(simd::Kernels(isa).match_bitmap64(
                                  in.data(), nw, k, match.data()),
                              ref_match_count)
                        << simd::IsaName(isa) << " nw=" << nw << " k=" << k;
                    EXPECT_EQ(match, ref_match)
                        << simd::IsaName(isa) << " nw=" << nw << " k=" << k;
                }
            }
        }
    }
}

TEST(SimdKernels, FcmHashMatchesScalar)
{
    Rng rng(0x44);
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                     size_t{100}, size_t{2048}, size_t{2051}}) {
        std::vector<uint64_t> values(n);
        for (auto& v : values) v = rng.Next();
        std::vector<uint64_t> reference(n);
        simd::ScalarKernels().fcm_hash(values.data(), n, reference.data());
        for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(reference[i],
                      FcmContextHash(i >= 1 ? values[i - 1] : 0,
                                     i >= 2 ? values[i - 2] : 0,
                                     i >= 3 ? values[i - 3] : 0));
        }
        for (Isa isa : kAllLevels) {
            if (!simd::IsaAvailable(isa)) continue;
            std::vector<uint64_t> hashes(n);
            simd::Kernels(isa).fcm_hash(values.data(), n, hashes.data());
            EXPECT_EQ(hashes, reference)
                << simd::IsaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernels, PopcountBitsMatchesNaive)
{
    Rng rng(0x55);
    for (size_t nbits : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{9}, size_t{63}, size_t{64}, size_t{65},
                         size_t{1000}, size_t{4098}}) {
        Bytes bitmap = RandomBytes(rng, (nbits + 7) / 8);
        size_t naive = 0;
        for (size_t i = 0; i < nbits; ++i) {
            naive += (uint8_t(bitmap[i >> 3]) >> (i & 7)) & 1u;
        }
        EXPECT_EQ(simd::PopcountBits(bitmap.data(), nbits), naive)
            << "nbits=" << nbits;
    }
}

TEST(SimdSelection, NamesRoundTripAndErrorsListLevels)
{
    for (Isa isa : kAllLevels) {
        EXPECT_EQ(simd::ParseIsa(simd::IsaName(isa)), isa);
    }
    EXPECT_EQ(simd::ParseIsa("AVX2"), Isa::kAvx2);  // case-insensitive
    try {
        simd::ParseIsa("sse9");
        FAIL() << "ParseIsa did not throw";
    } catch (const UsageError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("sse9"), std::string::npos) << what;
        EXPECT_NE(what.find("scalar"), std::string::npos) << what;
        EXPECT_NE(what.find("avx2"), std::string::npos) << what;
        EXPECT_NE(what.find("avx512"), std::string::npos) << what;
    }
    EXPECT_THROW(Options{}.with_isa("neon"), UsageError);

    EXPECT_TRUE(simd::IsaAvailable(Isa::kScalar));
    EXPECT_TRUE(simd::IsaAvailable(simd::BestSupportedIsa()));
    EXPECT_TRUE(simd::IsaAvailable(simd::DefaultIsa()));
    EXPECT_NE(simd::CompiledIsaLevels().find("scalar"), std::string::npos);
}

/** Identical to executor_test's MakeInput — the golden table below pins
 *  the same containers (do not change one without the other). */
Bytes
MakeInput(size_t n_bytes, uint64_t seed)
{
    Bytes data(n_bytes);
    uint64_t state = seed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= n_bytes; i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    for (size_t i = n_bytes & ~size_t{3}; i < n_bytes; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = static_cast<std::byte>(state >> 56);
    }
    return data;
}

struct Golden {
    size_t size;
    Algorithm algorithm;
    uint64_t checksum;
};

/** The PR 2 wire-format goldens (the checksum half of executor_test's
 *  table): every kernel level must reproduce these bytes exactly. */
constexpr Golden kGolden[] = {
    {size_t{1} << 20, Algorithm::kSPspeed, 0x8164796542bb988bull},
    {size_t{1} << 20, Algorithm::kSPratio, 0x526deebca63acd9bull},
    {size_t{1} << 20, Algorithm::kDPspeed, 0x82032e9934e4fad5ull},
    {size_t{1} << 20, Algorithm::kDPratio, 0x69a8a775ae901fbcull},
    {(size_t{1} << 18) + 13, Algorithm::kSPspeed, 0x6f130cb3aec62125ull},
    {(size_t{1} << 18) + 13, Algorithm::kSPratio, 0x5b4e8bd20eba4a96ull},
    {(size_t{1} << 18) + 13, Algorithm::kDPspeed, 0xe451776ff8bb5f24ull},
    {(size_t{1} << 18) + 13, Algorithm::kDPratio, 0x28355c9472bc8f68ull},
};

/** cpu backend x every ISA level via the per-call request: golden bytes,
 *  plus decode under a *different* level than the one that encoded. */
TEST(SimdGoldenMatrix, CpuBackendEveryIsaLevel)
{
    for (Isa isa : kAllLevels) {
        if (!simd::IsaAvailable(isa)) continue;
        Options options;
        options.threads = 1;
        options.with_isa(simd::IsaName(isa));
        for (const Golden& g : kGolden) {
            const Bytes input = MakeInput(g.size, 0x5eed + g.size);
            const Bytes compressed =
                Compress(g.algorithm, ByteSpan(input), options);
            EXPECT_EQ(Checksum64(ByteSpan(compressed)), g.checksum)
                << simd::IsaName(isa) << ", alg "
                << AlgorithmName(g.algorithm) << ", size " << g.size;

            // Cross-level decode: scalar-encoded bytes must decode at the
            // best level and vice versa.
            Options other;
            other.threads = 1;
            other.with_isa(simd::IsaName(
                isa == Isa::kScalar ? simd::BestSupportedIsa()
                                    : Isa::kScalar));
            EXPECT_EQ(Decompress(ByteSpan(compressed), other), input)
                << simd::IsaName(isa) << " container failed cross-level "
                << "decode, alg " << AlgorithmName(g.algorithm);
        }
    }
}

/** gpusim backends follow the process default level (no per-call knob):
 *  force each level process-wide and re-assert the same goldens. */
TEST(SimdGoldenMatrix, GpusimBackendsEveryIsaLevel)
{
    for (Isa isa : kAllLevels) {
        if (!simd::IsaAvailable(isa)) continue;
        ScopedDefaultIsa forced(isa);
        for (const char* backend : {"gpusim:4090", "gpusim:a100"}) {
            Options options;
            options.threads = 1;
            options.with_executor(backend);
            for (const Golden& g : kGolden) {
                const Bytes input = MakeInput(g.size, 0x5eed + g.size);
                const Bytes compressed =
                    Compress(g.algorithm, ByteSpan(input), options);
                EXPECT_EQ(Checksum64(ByteSpan(compressed)), g.checksum)
                    << backend << " under " << simd::IsaName(isa)
                    << ", alg " << AlgorithmName(g.algorithm) << ", size "
                    << g.size;
                EXPECT_EQ(Decompress(ByteSpan(compressed), options), input)
                    << backend << " under " << simd::IsaName(isa);
            }
        }
    }
}

}  // namespace
}  // namespace fpc
