/**
 * @file
 * Telemetry subsystem tests (core/telemetry.h):
 *
 *  - byte accounting: stage and chunk counters reconcile exactly with the
 *    container totals reported by Inspect, for all four algorithms on the
 *    CPU backend and a gpusim backend;
 *  - neutrality: attaching a sink must not change one compressed byte
 *    (asserted against the executor_test golden checksums);
 *  - zero allocations on the instrumented chunk hot path (counting
 *    operator new — the sink may only allocate at merge/snapshot time);
 *  - the FPC_TELEMETRY=0 build keeps the API but collects nothing;
 *  - the Codec facade and StreamCompressor::stats() plumbing.
 */
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/codec.h"
#include "core/executor.h"
#include "core/orchestrate.h"
#include "core/pipeline.h"
#include "core/stream.h"
#include "core/telemetry.h"
#include "util/hash.h"

// The counting operators below pair a malloc-backed operator new with a
// free-backed operator delete — a valid replacement pair, but GCC's
// -Wmismatched-new-delete cannot see that once it inlines them into the
// test bodies.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<size_t> g_alloc_count{0};

}  // namespace

void*
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace fpc {
namespace {

/** Same generator as executor_test.cc so the golden checksums there apply
 *  verbatim here. */
Bytes
MakeInput(size_t n_bytes, uint64_t seed)
{
    Bytes data(n_bytes);
    uint64_t state = seed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= n_bytes; i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    for (size_t i = n_bytes & ~size_t{3}; i < n_bytes; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = static_cast<std::byte>(state >> 56);
    }
    return data;
}

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

const char* const kBackends[] = {"cpu", "gpusim:4090"};

StageId
FirstStageOf(Algorithm algorithm)
{
    return GetPipeline(algorithm).stages.front().id;
}

TEST(TelemetryCounters, ReconcileWithContainerTotals)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "built with FPC_TELEMETRY=0";
    const Bytes input = MakeInput((size_t{1} << 18) + 13, 0xc0ffee);
    for (const char* backend : kBackends) {
        for (Algorithm algorithm : kAlgorithms) {
            Telemetry sink;
            Options options = Options{}
                                  .with_executor(backend)
                                  .with_threads(2)
                                  .with_telemetry(&sink);
            const Bytes compressed =
                Compress(algorithm, ByteSpan(input), options);
            const Bytes restored = Decompress(ByteSpan(compressed), options);
            ASSERT_EQ(restored, input);

            const CompressedInfo info = Inspect(ByteSpan(compressed));
            const TelemetrySnapshot snap = sink.Snapshot();
            SCOPED_TRACE(std::string(backend) + " / " +
                         AlgorithmName(algorithm));

            // Run totals are the exact end-to-end byte counts.
            EXPECT_EQ(snap.executor, backend);
            EXPECT_EQ(snap.algorithm, AlgorithmName(algorithm));
            EXPECT_EQ(snap.compress.calls, 1u);
            EXPECT_EQ(snap.compress.input_bytes, input.size());
            EXPECT_EQ(snap.compress.output_bytes, compressed.size());
            EXPECT_GT(snap.compress.wall_ns, 0u);
            EXPECT_EQ(snap.decompress.calls, 1u);
            EXPECT_EQ(snap.decompress.input_bytes, compressed.size());
            EXPECT_EQ(snap.decompress.output_bytes, input.size());

            // Chunk counters match the container's chunk table.
            const TelemetryShard& counters = snap.counters;
            EXPECT_EQ(counters.chunks_encoded, info.chunk_count);
            EXPECT_EQ(counters.chunks_raw, info.raw_chunks);
            EXPECT_EQ(counters.chunks_decoded, info.chunk_count);
            EXPECT_GT(counters.arena_high_water_bytes, 0u);

            // Every chunk runs the stage pipeline on encode (the raw
            // decision happens after), so the first stage consumed exactly
            // the chunked stream.
            const StageMetrics& first = counters[FirstStageOf(algorithm)];
            EXPECT_EQ(first.encode.calls, info.chunk_count);
            EXPECT_EQ(first.encode.input_bytes, info.transformed_size);

            // On decode, raw chunks skip the stages; the first stage
            // reproduces exactly the non-raw part of the chunked stream.
            uint64_t raw_bytes = 0;
            for (size_t c = 0; c < info.chunk_raw.size(); ++c) {
                if (info.chunk_raw[c] != 0) raw_bytes += info.chunk_sizes[c];
            }
            EXPECT_EQ(first.decode.calls, info.chunk_count - info.raw_chunks);
            EXPECT_EQ(first.decode.output_bytes,
                      info.transformed_size - raw_bytes);

            // Whole-input pre-stage (DPratio only): FCM sees the original
            // bytes and emits the chunked stream.
            const StageMetrics& fcm = counters[StageId::kFcm];
            if (GetPipeline(algorithm).pre.encode != nullptr) {
                EXPECT_EQ(fcm.encode.calls, 1u);
                EXPECT_EQ(fcm.encode.input_bytes, info.original_size);
                EXPECT_EQ(fcm.encode.output_bytes, info.transformed_size);
                EXPECT_EQ(fcm.decode.calls, 1u);
                EXPECT_EQ(fcm.decode.input_bytes, info.transformed_size);
                EXPECT_EQ(fcm.decode.output_bytes, info.original_size);
            } else {
                EXPECT_EQ(fcm.encode.calls, 0u);
                EXPECT_EQ(fcm.decode.calls, 0u);
            }

            // MPLG subchunk counters fire exactly for the MPLG pipelines.
            const StageMetrics& mplg = counters[StageId::kMplg];
            if (mplg.encode.calls != 0) {
                EXPECT_GT(counters.mplg_subchunks, 0u);
                EXPECT_LE(counters.mplg_enhanced, counters.mplg_subchunks);
            } else {
                EXPECT_EQ(counters.mplg_subchunks, 0u);
            }
        }
    }
}

/** The CPU pass-1 loop and the device header-parsing path must agree on
 *  every byte and subchunk counter (only wall times may differ). */
TEST(TelemetryCounters, CpuAndDeviceShardsAgree)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "built with FPC_TELEMETRY=0";
    const Bytes input = MakeInput(size_t{3} << 16, 0xfeed);
    for (Algorithm algorithm : kAlgorithms) {
        std::array<TelemetrySnapshot, 2> snaps;
        for (size_t b = 0; b < 2; ++b) {
            Telemetry sink;
            Options options =
                Options{}.with_executor(kBackends[b]).with_telemetry(&sink);
            Bytes compressed = Compress(algorithm, ByteSpan(input), options);
            Decompress(ByteSpan(compressed), options);
            snaps[b] = sink.Snapshot();
        }
        SCOPED_TRACE(AlgorithmName(algorithm));
        const TelemetryShard& cpu = snaps[0].counters;
        const TelemetryShard& dev = snaps[1].counters;
        EXPECT_EQ(cpu.chunks_encoded, dev.chunks_encoded);
        EXPECT_EQ(cpu.chunks_raw, dev.chunks_raw);
        EXPECT_EQ(cpu.chunks_decoded, dev.chunks_decoded);
        EXPECT_EQ(cpu.mplg_subchunks, dev.mplg_subchunks);
        EXPECT_EQ(cpu.mplg_enhanced, dev.mplg_enhanced);
        for (size_t s = 0; s < kStageCount; ++s) {
            SCOPED_TRACE(StageName(static_cast<StageId>(s)));
            EXPECT_EQ(cpu.stages[s].encode.calls, dev.stages[s].encode.calls);
            EXPECT_EQ(cpu.stages[s].encode.input_bytes,
                      dev.stages[s].encode.input_bytes);
            EXPECT_EQ(cpu.stages[s].encode.output_bytes,
                      dev.stages[s].encode.output_bytes);
            EXPECT_EQ(cpu.stages[s].decode.calls, dev.stages[s].decode.calls);
            EXPECT_EQ(cpu.stages[s].decode.input_bytes,
                      dev.stages[s].decode.input_bytes);
            EXPECT_EQ(cpu.stages[s].decode.output_bytes,
                      dev.stages[s].decode.output_bytes);
        }
    }
}

/** Attaching a sink must not change the compressed bytes: the two golden
 *  rows below are copied from executor_test.cc (1 MiB, seed 0x5eed+size,
 *  threads=1) and must hold with and without telemetry. */
TEST(TelemetryNeutrality, GoldenChecksumsWithAndWithoutSink)
{
    struct Golden {
        Algorithm algorithm;
        size_t compressed_bytes;
        uint64_t checksum;
    };
    const Golden kGolden[] = {
        {Algorithm::kSPspeed, 352288, 0x8164796542bb988bull},
        {Algorithm::kDPratio, 709370, 0x69a8a775ae901fbcull},
    };
    const Bytes input = MakeInput(size_t{1} << 20, 0x5eed + (size_t{1} << 20));
    for (const char* backend : kBackends) {
        for (const Golden& g : kGolden) {
            SCOPED_TRACE(std::string(backend) + " / " +
                         AlgorithmName(g.algorithm));
            Telemetry sink;
            Options plain = Options{}.with_executor(backend).with_threads(1);
            Options instrumented = plain;
            instrumented.with_telemetry(&sink);

            const Bytes without =
                Compress(g.algorithm, ByteSpan(input), plain);
            const Bytes with =
                Compress(g.algorithm, ByteSpan(input), instrumented);
            EXPECT_EQ(without, with);
            EXPECT_EQ(with.size(), g.compressed_bytes);
            EXPECT_EQ(Checksum64(ByteSpan(with)), g.checksum);
            EXPECT_EQ(Decompress(ByteSpan(with), instrumented), input);
        }
    }
}

/** The instrumented chunk hot path allocates nothing once the arena is
 *  warm: shards are plain structs bumped in place, and the sink is only
 *  touched at merge time (which happens outside this loop). */
TEST(TelemetryAllocation, InstrumentedChunkLoopIsAllocationFree)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "built with FPC_TELEMETRY=0";
    const Bytes data = MakeInput(kChunkSize * 8, 0xa110c);
    for (Algorithm algorithm : kAlgorithms) {
        const PipelineSpec& spec = GetPipeline(algorithm);
        ScratchArena scratch;
        TelemetryShard shard;
        scratch.SetTelemetryShard(&shard);

        auto encode_all = [&] {
            for (size_t c = 0; c < ChunkCountOf(data.size()); ++c) {
                bool raw = false;
                EncodeChunk(spec, ChunkAt(ByteSpan(data), c), raw, scratch);
            }
        };
        encode_all();  // warm the arena (and the clock's first-use paths)
        const size_t before = g_alloc_count.load();
        encode_all();
        EXPECT_EQ(g_alloc_count.load() - before, 0u)
            << AlgorithmName(algorithm)
            << ": instrumented encode loop allocated";

        // Folding the shard into a sink allocates at most transiently and
        // never per chunk; the counters survive the merge.
        Telemetry sink;
        sink.Merge(shard);
        EXPECT_EQ(sink.Snapshot().counters.chunks_encoded,
                  shard.chunks_encoded);
    }
}

/** With FPC_TELEMETRY=0 the API compiles and runs, but a sink stays
 *  empty; with hooks compiled in the same run fills it. */
TEST(TelemetryCompileSwitch, OffBuildCollectsNothing)
{
    Telemetry sink;
    Options options = Options{}.with_telemetry(&sink);
    const Bytes input = MakeInput(kChunkSize * 4, 0x0ff);
    Bytes compressed = Compress(Algorithm::kSPspeed, ByteSpan(input), options);
    EXPECT_EQ(Decompress(ByteSpan(compressed), options), input);
    const TelemetrySnapshot snap = sink.Snapshot();
    if (kTelemetryEnabled) {
        EXPECT_EQ(snap.compress.calls, 1u);
        EXPECT_GT(snap.counters.chunks_encoded, 0u);
    } else {
        EXPECT_EQ(snap.compress.calls, 0u);
        EXPECT_EQ(snap.counters.chunks_encoded, 0u);
        EXPECT_TRUE(snap.executor.empty());
    }
    // The JSON schema line renders either way.
    EXPECT_NE(sink.ToJson().find("\"schema\": \"fpc.telemetry.v6\""),
              std::string::npos);
}

TEST(TelemetryJson, SchemaShape)
{
    Telemetry sink;
    Options options = Options{}.with_telemetry(&sink);
    Bytes input = MakeInput(kChunkSize * 2, 0x15);
    Bytes compressed = Compress(Algorithm::kSPratio, ByteSpan(input), options);
    Decompress(ByteSpan(compressed), options);
    const std::string json = sink.ToJson();
    for (const char* field :
         {"\"schema\": \"fpc.telemetry.v6\"", "\"compress\"",
          "\"decompress\"", "\"ranged\"", "\"chunks\"", "\"adaptive\"",
          "\"mplg\"", "\"arena\"", "\"service\"", "\"tenants\"",
          "\"stages\"", "\"DIFFMS\"", "\"RARE\"", "\"histograms\"",
          "\"chunk_encode\"", "\"chunk_decode\"", "\"latency\"",
          "\"p50_ns\"", "\"p95_ns\"", "\"p99_ns\"", "\"max_ns\""}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
    sink.Reset();
    const TelemetrySnapshot after = sink.Snapshot();
    EXPECT_EQ(after.compress.calls, 0u);
    EXPECT_EQ(after.counters.chunks_encoded, 0u);
}

TEST(CodecFacade, TypedRoundTripAndValidation)
{
    std::vector<float> floats(20000);
    for (size_t i = 0; i < floats.size(); ++i) {
        floats[i] = 0.5f * static_cast<float>(i % 127);
    }
    Codec codec = Codec::For<float>(Mode::kRatio);
    EXPECT_EQ(codec.algorithm(), Algorithm::kSPratio);
    Bytes packed = codec.compress(std::span<const float>(floats));
    EXPECT_EQ(codec.decompress_as<float>(ByteSpan(packed)), floats);

    // decompress_into, typed and raw.
    std::vector<float> into(floats.size());
    codec.decompress_into(ByteSpan(packed), std::span<float>(into));
    EXPECT_EQ(into, floats);

    // Word-size misuse throws before any work happens.
    std::vector<double> doubles(16, 1.5);
    EXPECT_THROW(codec.compress(std::span<const double>(doubles)),
                 UsageError);
    Codec dp = Codec::For<double>(Mode::kSpeed);
    EXPECT_EQ(dp.algorithm(), Algorithm::kDPspeed);
    EXPECT_THROW(dp.decompress_as<double>(ByteSpan(packed)), UsageError);
    std::vector<double> dinto(4);
    EXPECT_THROW(
        dp.decompress_into(ByteSpan(packed), std::span<double>(dinto)),
        UsageError);

    // inspect is the same data as the free function.
    CompressedInfo info = Codec::inspect(ByteSpan(packed));
    EXPECT_EQ(info.algorithm, Algorithm::kSPratio);
    EXPECT_EQ(info.algorithm_name, "SPratio");
    EXPECT_EQ(info.compressed_size, packed.size());
    EXPECT_EQ(info.chunk_sizes.size(), info.chunk_count);
    EXPECT_EQ(info.chunk_raw.size(), info.chunk_count);
}

TEST(CodecFacade, BackendByNameMatchesExecutorOption)
{
    const Bytes input = MakeInput(kChunkSize * 3 + 7, 0xabc);
    Codec by_name(Algorithm::kSPspeed, "gpusim:a100");
    EXPECT_EQ(by_name.options().executor, &GetExecutor("gpusim:a100"));
    Codec by_option(Algorithm::kSPspeed,
                    Options{}.with_executor("gpusim:a100"));
    EXPECT_EQ(by_name.compress(ByteSpan(input)),
              by_option.compress(ByteSpan(input)));
    EXPECT_THROW(Codec(Algorithm::kSPspeed, "tpu"), UsageError);
}

TEST(CodecFacade, EnableTelemetryAccumulatesAcrossCalls)
{
    Codec codec(Algorithm::kDPspeed);
    EXPECT_EQ(codec.telemetry(), nullptr);
    Telemetry& sink = codec.enable_telemetry();
    EXPECT_EQ(codec.telemetry(), &sink);
    EXPECT_EQ(&codec.enable_telemetry(), &sink);  // idempotent

    const Bytes input = MakeInput(kChunkSize * 2, 0xd00d);
    Bytes packed = codec.compress(ByteSpan(input));
    EXPECT_EQ(codec.decompress(ByteSpan(packed)), input);
    Bytes packed2 = codec.compress(ByteSpan(input));
    const TelemetrySnapshot snap = sink.Snapshot();
    if (kTelemetryEnabled) {
        EXPECT_EQ(snap.compress.calls, 2u);
        EXPECT_EQ(snap.decompress.calls, 1u);
        EXPECT_EQ(snap.compress.input_bytes, 2 * input.size());
    } else {
        EXPECT_EQ(snap.compress.calls, 0u);
    }

    // Copies share the owned sink.
    Codec copy = codec;
    copy.compress(ByteSpan(input));
    if (kTelemetryEnabled) {
        EXPECT_EQ(sink.Snapshot().compress.calls, 3u);
    }
}

TEST(StreamStats, PerStageMetricsAcrossFrames)
{
    std::vector<double> frame(4096);
    for (size_t i = 0; i < frame.size(); ++i) {
        frame[i] = 1.0 / static_cast<double>(i + 1);
    }
    StreamCompressor compressor(Algorithm::kDPspeed);
    compressor.stats();  // attach the owned sink before the first frame
    compressor.PutDoubles(frame);
    compressor.PutDoubles(frame);
    const TelemetrySnapshot comp_stats = compressor.stats();

    StreamDecompressor decompressor{ByteSpan(compressor.Stream())};
    decompressor.stats();
    EXPECT_EQ(decompressor.NextDoubles(), frame);
    EXPECT_EQ(decompressor.NextDoubles(), frame);
    const TelemetrySnapshot decomp_stats = decompressor.stats();

    if (kTelemetryEnabled) {
        EXPECT_EQ(comp_stats.compress.calls, 2u);
        EXPECT_EQ(comp_stats.compress.input_bytes,
                  2 * frame.size() * sizeof(double));
        EXPECT_EQ(decomp_stats.decompress.calls, 2u);
        EXPECT_EQ(decomp_stats.decompress.output_bytes,
                  2 * frame.size() * sizeof(double));
    } else {
        EXPECT_EQ(comp_stats.compress.calls, 0u);
        EXPECT_EQ(decomp_stats.decompress.calls, 0u);
    }
}

}  // namespace
}  // namespace fpc
