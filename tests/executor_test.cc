/**
 * @file
 * Executor-registry tests: name lookup and error reporting, capability
 * metadata, Options-based resolution, and the paper's cross-device
 * compatibility property asserted across the *whole registry* — every
 * backend must produce byte-identical containers for all four algorithms
 * and decode containers produced by every other backend. Golden sizes and
 * checksums pin the wire format per backend: any change here is a
 * breaking format change and must be deliberate (bump the container
 * version), not a side effect of a performance or scheduling change.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/codec.h"
#include "core/executor.h"
#include "core/stream.h"
#include "util/hash.h"

namespace fpc {
namespace {

/**
 * Deterministic smooth low-entropy stream typical of scientific fields:
 * a random walk over 32-bit words with small steps (LCG-driven), plus an
 * LCG byte tail when the size is not word-aligned. Matches the golden
 * table below — do not change one without the other.
 */
Bytes
MakeInput(size_t n_bytes, uint64_t seed)
{
    Bytes data(n_bytes);
    uint64_t state = seed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= n_bytes; i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    for (size_t i = n_bytes & ~size_t{3}; i < n_bytes; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = static_cast<std::byte>(state >> 56);
    }
    return data;
}

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

TEST(ExecutorRegistry, BuiltinBackendsAreRegistered)
{
    const std::vector<std::string> names = ExecutorNames();
    ASSERT_GE(names.size(), 3u);
    EXPECT_NE(std::find(names.begin(), names.end(), "cpu"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "gpusim:4090"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "gpusim:a100"),
              names.end());
    for (const std::string& name : names) {
        EXPECT_EQ(GetExecutor(name).Name(), name);
    }
}

TEST(ExecutorRegistry, LookupIsCaseInsensitive)
{
    EXPECT_EQ(GetExecutor("CPU").Name(), "cpu");
    EXPECT_EQ(GetExecutor("GpuSim:4090").Name(), "gpusim:4090");
    EXPECT_EQ(FindExecutor("GPUSIM:A100"), FindExecutor("gpusim:a100"));
}

TEST(ExecutorRegistry, UnknownNameThrowsListingBackends)
{
    EXPECT_EQ(FindExecutor("cuda:h100"), nullptr);
    try {
        GetExecutor("cuda:h100");
        FAIL() << "GetExecutor did not throw";
    } catch (const UsageError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cuda:h100"), std::string::npos) << what;
        EXPECT_NE(what.find("cpu"), std::string::npos) << what;
        EXPECT_NE(what.find("gpusim:4090"), std::string::npos) << what;
    }
}

TEST(ExecutorRegistry, Capabilities)
{
    const ExecutorCaps cpu = GetExecutor("cpu").Capabilities();
    EXPECT_TRUE(cpu.chunk_parallel);
    EXPECT_FALSE(cpu.device_kernels);
    EXPECT_EQ(cpu.profile, nullptr);

    const ExecutorCaps gpu = GetExecutor("gpusim:4090").Capabilities();
    EXPECT_FALSE(gpu.chunk_parallel);
    EXPECT_TRUE(gpu.device_kernels);
    ASSERT_NE(gpu.profile, nullptr);
    EXPECT_STRNE(gpu.profile, GetExecutor("gpusim:a100").Capabilities()
                                  .profile);
}

TEST(ExecutorRegistry, ResolveExecutorHonoursOptionsPrecedence)
{
    EXPECT_EQ(&ResolveExecutor(Options{}), &DefaultExecutor());
    EXPECT_EQ(DefaultExecutor().Name(), "cpu");

    // with_executor is the only backend spelling: the named backend is
    // resolved verbatim, anything else falls back to the default.
    Options named;
    named.with_executor("gpusim:4090");
    EXPECT_EQ(ResolveExecutor(named).Name(), "gpusim:4090");

    Options by_ref;
    by_ref.executor = &GetExecutor("cpu");
    EXPECT_EQ(&ResolveExecutor(by_ref), &GetExecutor("cpu"));
}

/** Every registered backend must emit byte-identical containers and must
 *  decode containers emitted by every other backend (DESIGN.md: the
 *  cross-device compatibility property). */
TEST(ExecutorMatrix, AllBackendsBitIdenticalAndInteroperable)
{
    const Bytes input = MakeInput((size_t{1} << 18) + 13, 0xc0ffee);
    for (Algorithm algorithm : kAlgorithms) {
        std::vector<Bytes> containers;
        for (const std::string& name : ExecutorNames()) {
            Options options;
            options.executor = &GetExecutor(name);
            containers.push_back(
                Compress(algorithm, ByteSpan(input), options));
            EXPECT_EQ(containers.back(), containers.front())
                << "backend " << name << " diverged on "
                << AlgorithmName(algorithm);
        }
        // Decode the (shared) container on every backend, both APIs.
        for (const std::string& name : ExecutorNames()) {
            Options options;
            options.executor = &GetExecutor(name);
            EXPECT_EQ(Decompress(ByteSpan(containers.front()), options),
                      input)
                << "backend " << name << " failed to decode "
                << AlgorithmName(algorithm);
            Bytes into(input.size());
            DecompressInto(ByteSpan(containers.front()),
                           std::span<std::byte>(into), options);
            EXPECT_EQ(into, input)
                << "backend " << name << " DecompressInto diverged on "
                << AlgorithmName(algorithm);
        }
    }
}

/**
 * Golden sizes and checksums of the compressed streams, asserted for
 * every registered backend (folded in from the former determinism_test
 * golden table when the executor layer was introduced).
 */
TEST(ExecutorGolden, CompressedChecksumsOnEveryBackend)
{
    struct Golden {
        size_t size;
        Algorithm algorithm;
        size_t compressed_bytes;
        uint64_t checksum;
    };
    const Golden kGolden[] = {
        {size_t{1} << 20, Algorithm::kSPspeed, 352288,
         0x8164796542bb988bull},
        {size_t{1} << 20, Algorithm::kSPratio, 339156,
         0x526deebca63acd9bull},
        {size_t{1} << 20, Algorithm::kDPspeed, 718032,
         0x82032e9934e4fad5ull},
        {size_t{1} << 20, Algorithm::kDPratio, 709370,
         0x69a8a775ae901fbcull},
        {(size_t{1} << 18) + 13, Algorithm::kSPspeed, 88117,
         0x6f130cb3aec62125ull},
        {(size_t{1} << 18) + 13, Algorithm::kSPratio, 84488,
         0x5b4e8bd20eba4a96ull},
        {(size_t{1} << 18) + 13, Algorithm::kDPspeed, 179552,
         0xe451776ff8bb5f24ull},
        {(size_t{1} << 18) + 13, Algorithm::kDPratio, 177416,
         0x28355c9472bc8f68ull},
    };

    for (const std::string& name : ExecutorNames()) {
        Options options;
        options.executor = &GetExecutor(name);
        options.threads = 1;
        for (const Golden& g : kGolden) {
            const Bytes input = MakeInput(g.size, 0x5eed + g.size);
            const Bytes compressed =
                Compress(g.algorithm, ByteSpan(input), options);
            EXPECT_EQ(compressed.size(), g.compressed_bytes)
                << name << ", alg " << static_cast<int>(g.algorithm)
                << ", size " << g.size;
            EXPECT_EQ(Checksum64(ByteSpan(compressed)), g.checksum)
                << name << ", alg " << static_cast<int>(g.algorithm)
                << ", size " << g.size;
        }
    }
}

TEST(ExecutorStream, FramesCrossBackends)
{
    std::vector<float> frame0(20000);
    std::vector<float> frame1(777);
    for (size_t i = 0; i < frame0.size(); ++i) {
        frame0[i] = 0.25f * static_cast<float>(i % 97);
    }
    for (size_t i = 0; i < frame1.size(); ++i) {
        frame1[i] = 1.0f / static_cast<float>(i + 1);
    }

    StreamCompressor compressor(Algorithm::kSPratio,
                                GetExecutor("gpusim:a100"));
    compressor.PutFloats(frame0);
    compressor.PutFloats(frame1);

    StreamDecompressor decompressor(ByteSpan(compressor.Stream()),
                                    GetExecutor("cpu"));
    EXPECT_EQ(decompressor.NextFloats(), frame0);
    EXPECT_EQ(decompressor.NextFloats(), frame1);
    EXPECT_FALSE(decompressor.HasNext());
}

TEST(ExecutorStream, TypedReadRejectsWrongElementWidthWithoutConsuming)
{
    std::vector<double> doubles(4096, 3.5);
    std::vector<float> floats(512, -1.0f);
    StreamCompressor compressor(Algorithm::kDPspeed);
    compressor.PutDoubles(doubles);
    {
        StreamCompressor sp(Algorithm::kSPspeed);
        sp.PutFloats(floats);
        Bytes stream = compressor.Stream();
        AppendBytes(stream, ByteSpan(sp.Stream()));

        StreamDecompressor decompressor((ByteSpan(stream)));
        // Wrong width: UsageError, and the frame stays unconsumed.
        EXPECT_THROW(decompressor.NextFloats(), UsageError);
        EXPECT_TRUE(decompressor.HasNext());
        EXPECT_EQ(decompressor.NextDoubles(), doubles);
        // Second frame is SP data; the mirror-image misuse also throws.
        EXPECT_THROW(decompressor.NextDoubles(), UsageError);
        EXPECT_EQ(decompressor.NextFloats(), floats);
        EXPECT_FALSE(decompressor.HasNext());
    }
}

TEST(ExecutorTyped, TypedDecodeRejectsWrongWidthContainers)
{
    std::vector<double> values(1000, 2.5);
    const Codec dp = Codec::For<double>(Mode::kSpeed);
    Bytes c = dp.compress(std::span<const double>(values));
    EXPECT_THROW(dp.decompress_as<float>(ByteSpan(c)), UsageError);
    EXPECT_EQ(dp.decompress_as<double>(ByteSpan(c)), values);

    std::vector<float> fvalues(1000, 2.5f);
    const Codec sp = Codec::For<float>(Mode::kRatio);
    Bytes fc = sp.compress(std::span<const float>(fvalues));
    EXPECT_THROW(sp.decompress_as<double>(ByteSpan(fc)), UsageError);
    EXPECT_EQ(sp.decompress_as<float>(ByteSpan(fc)), fvalues);
}

}  // namespace
}  // namespace fpc
