/**
 * @file
 * Structure-aware corruption-injection harness (the "no byte of damage may
 * do anything but throw CorruptStreamError" property): golden containers
 * for all four algorithms are mutated at EVERY byte position (single-bit
 * flip, zero, 0xFF) and truncated at every length, then decoded on both
 * the cpu and gpusim backends. Every attempt must either throw
 * CorruptStreamError or round-trip the exact original bytes — never crash,
 * hang, or allocate more than a fixed cap (global operator new is replaced
 * with a max-single-allocation tracker, so decompression-bomb amplification
 * from forged size fields fails the test even when the decode eventually
 * throws). The single tolerated exception is payload damage that collides
 * with the stored 64-bit content checksum — the wire format's only stored
 * redundancy — which the harness identifies exactly and bounds (see
 * ExpectSafeDecode and DESIGN.md "Untrusted-input validation"). Also pins
 * the stream-layer recovery contract: a corrupt frame leaves the cursor in
 * place so callers can repair and retry.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string_view>

#include "core/codec.h"
#include "core/container.h"
#include "core/executor.h"
#include "core/stream.h"
#include "util/bitio.h"
#include "util/hash.h"

namespace {

std::atomic<size_t> g_max_alloc{0};

void
NoteAlloc(std::size_t size)
{
    size_t cur = g_max_alloc.load(std::memory_order_relaxed);
    while (size > cur && !g_max_alloc.compare_exchange_weak(
                             cur, size, std::memory_order_relaxed)) {
    }
}

}  // namespace

// GCC cannot see that the replaced operator new below is malloc-backed
// and flags every free() in the matching deletes.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void*
operator new(std::size_t size)
{
    NoteAlloc(size);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    NoteAlloc(size);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace fpc {
namespace {

/**
 * Hard cap on any single heap allocation during a decode attempt. The
 * legitimate maximum is tens of KiB (a chunk plus kChunkDecodeSlack, the
 * FCM word arrays for these inputs, the output buffer itself); a forged
 * size field that escaped budget enforcement would ask for MiB to GiB.
 */
constexpr size_t kMaxSingleAllocation = size_t{4} << 20;

/** Smooth low-entropy walk, the same character as executor_test's golden
 *  inputs (compressible, so the coded paths — not raw chunks — are hit). */
Bytes
SmoothInput(size_t n_bytes, uint64_t seed)
{
    Bytes data(n_bytes);
    uint64_t state = seed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= n_bytes; i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    for (size_t i = n_bytes & ~size_t{3}; i < n_bytes; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = static_cast<std::byte>(state >> 56);
    }
    return data;
}

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

struct SweepStats {
    size_t attempts = 0;
    size_t silent_escapes = 0;
};

/**
 * One decode attempt. The required outcome is: throw CorruptStreamError or
 * reproduce the original bytes, under the allocation cap either way. One
 * narrow third outcome is tolerated and counted: damage to *payload* bytes
 * whose decoded result collides with the stored 64-bit content checksum.
 * That channel is inherent to the frozen wire format — the header checksum
 * is the only stored redundancy, and no decode-side check can tell a
 * colliding output from clean data (see DESIGN.md "Untrusted-input
 * validation" for the collision pattern and the fix path). Mutations of
 * structural bytes (header + chunk table, pos < payload_start) are fully
 * cross-checked and get no such exemption.
 */
void
ExpectSafeDecode(ByteSpan container, const Bytes& original,
                 const Options& options, size_t pos, int mutant,
                 size_t payload_start, SweepStats& stats)
{
    ++stats.attempts;
    g_max_alloc.store(0, std::memory_order_relaxed);
    try {
        Bytes out = Decompress(container, options);
        if (out != original) {
            EXPECT_EQ(Checksum64(ByteSpan(out)),
                      Checksum64(ByteSpan(original)))
                << "mutant " << mutant << " at byte " << pos
                << " silently decoded to wrong bytes that the content "
                << "checksum should have caught";
            EXPECT_GE(pos, payload_start)
                << "structural mutation at byte " << pos
                << " escaped the header/chunk-table cross-checks";
            ++stats.silent_escapes;
        }
    } catch (const CorruptStreamError&) {
        // The expected rejection.
    }
    EXPECT_LE(g_max_alloc.load(std::memory_order_relaxed),
              kMaxSingleAllocation)
        << "oversized allocation decoding mutant " << mutant << " at byte "
        << pos;
}

class CorruptionSweep
    : public ::testing::TestWithParam<std::tuple<size_t, const char*>> {};

TEST_P(CorruptionSweep, EveryByteMutationIsRejectedOrHarmless)
{
    auto [algo_idx, backend] = GetParam();
    const Algorithm algorithm = kAlgorithms[algo_idx];
    // DPratio's FCM pre-stage doubles the transformed stream, so halve the
    // input to keep the sweep size comparable; all containers span at
    // least two 16 KiB chunks so the chunk table is exercised.
    const size_t n_bytes =
        algorithm == Algorithm::kDPratio ? 9000 : 18000;
    const Bytes input = SmoothInput(n_bytes, 0xabcd + algo_idx);
    Bytes container = Compress(algorithm, ByteSpan(input));
    const CompressedInfo info = Inspect(ByteSpan(container));
    ASSERT_GE(info.chunk_count, 2u);
    const size_t payload_start =
        ContainerHeaderSize() + info.chunk_count * sizeof(uint32_t);

    Options options;
    options.executor = &GetExecutor(backend);
    options.threads = 2;

    SweepStats stats;

    // The undamaged container must round-trip (and obey the cap).
    ExpectSafeDecode(ByteSpan(container), input, options, SIZE_MAX, -1,
                     payload_start, stats);
    ASSERT_EQ(stats.silent_escapes, 0u);

    // cpu: all three mutants at every position. gpusim models the same
    // kernels but is slower per call, so it rotates through the mutants —
    // still covering every byte position of every container.
    const bool all_mutants = std::string_view(backend) == "cpu";
    for (size_t pos = 0; pos < container.size(); ++pos) {
        const auto orig = static_cast<uint8_t>(container[pos]);
        const uint8_t mutants[3] = {static_cast<uint8_t>(orig ^ 0x01), 0x00,
                                    0xff};
        const int first = all_mutants ? 0 : static_cast<int>(pos % 3);
        const int last = all_mutants ? 2 : first;
        for (int m = first; m <= last; ++m) {
            if (mutants[m] == orig) continue;
            container[pos] = static_cast<std::byte>(mutants[m]);
            ExpectSafeDecode(ByteSpan(container), input, options, pos, m,
                             payload_start, stats);
        }
        container[pos] = static_cast<std::byte>(orig);
    }

    // The checksum-collision channel must stay what it is: a rare payload
    // accident (~2^-4 for the DIFFMS constant-offset pattern, see
    // DESIGN.md), not a systematic validation hole.
    EXPECT_LT(stats.silent_escapes, stats.attempts / 100)
        << stats.silent_escapes << " of " << stats.attempts
        << " mutants decoded to wrong bytes";
}

TEST_P(CorruptionSweep, EveryTruncationLengthThrows)
{
    auto [algo_idx, backend] = GetParam();
    const Algorithm algorithm = kAlgorithms[algo_idx];
    const size_t n_bytes =
        algorithm == Algorithm::kDPratio ? 9000 : 18000;
    const Bytes input = SmoothInput(n_bytes, 0xabcd + algo_idx);
    const Bytes container = Compress(algorithm, ByteSpan(input));

    Options options;
    options.executor = &GetExecutor(backend);
    options.threads = 2;

    // A shortened container can never round-trip; every prefix length must
    // be rejected (header cut, chunk-table cut, payload cut alike).
    for (size_t len = 0; len < container.size(); ++len) {
        g_max_alloc.store(0, std::memory_order_relaxed);
        EXPECT_THROW(Decompress(ByteSpan(container.data(), len), options),
                     CorruptStreamError)
            << "truncated to " << len << " of " << container.size();
        EXPECT_LE(g_max_alloc.load(std::memory_order_relaxed),
                  kMaxSingleAllocation)
            << "oversized allocation at truncation " << len;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CorruptionSweep,
    ::testing::Combine(::testing::Range(size_t{0}, size_t{4}),
                       ::testing::Values("cpu", "gpusim:4090")),
    [](const auto& info) {
        std::string backend = std::get<1>(info.param);
        for (char& c : backend) {
            if (c == ':') c = '_';
        }
        return std::string(
                   AlgorithmName(kAlgorithms[std::get<0>(info.param)])) +
               "_" + backend;
    });

TEST(CorruptionError, TruncationReportsStageAndOffset)
{
    const Bytes input = SmoothInput(18000, 7);
    const Bytes container = Compress(Algorithm::kSPspeed, ByteSpan(input));
    try {
        Decompress(ByteSpan(container.data(), container.size() - 5));
        FAIL() << "truncated container decoded";
    } catch (const CorruptStreamError& e) {
        EXPECT_STREQ(e.Stage(), "container");
        EXPECT_NE(e.Offset(), kNoOffset);
        EXPECT_NE(std::string(e.what()).find("[container"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CorruptionStream, NearSizeMaxFrameLengthDoesNotWrap)
{
    // Regression for the wrap-prone reader bounds: a stream frame whose
    // varint length is near SIZE_MAX must throw, not wrap `pos_ + n` and
    // read out of bounds (or allocate).
    for (uint64_t declared :
         {uint64_t{SIZE_MAX}, uint64_t{SIZE_MAX} - 7, uint64_t{1} << 62}) {
        Bytes stream;
        ByteWriter wr(stream);
        wr.PutVarint(declared);
        for (int i = 0; i < 64; ++i) wr.PutU8(0x5a);

        StreamDecompressor dec{ByteSpan(stream)};
        g_max_alloc.store(0, std::memory_order_relaxed);
        EXPECT_THROW(dec.NextFrame(), CorruptStreamError);
        EXPECT_LE(g_max_alloc.load(std::memory_order_relaxed),
                  kMaxSingleAllocation);
        // The failed frame was not consumed.
        EXPECT_TRUE(dec.HasNext());
    }
}

TEST(CorruptionStream, CorruptFrameLeavesCursorForRetry)
{
    std::vector<float> frame0(5000);
    std::vector<float> frame1(300);
    for (size_t i = 0; i < frame0.size(); ++i) {
        frame0[i] = 0.5f * static_cast<float>(i % 61);
    }
    for (size_t i = 0; i < frame1.size(); ++i) {
        frame1[i] = 2.0f / static_cast<float>(i + 1);
    }
    StreamCompressor compressor(Algorithm::kSPspeed);
    compressor.PutFloats(frame0);
    compressor.PutFloats(frame1);
    Bytes stream = compressor.Stream();

    // Damage a byte of the first frame's container header (well past the
    // frame-length varint). The decompressor views the caller's buffer, so
    // the caller can repair it in place and retry.
    const size_t target = 20;
    const std::byte original = stream[target];
    stream[target] ^= std::byte{0xff};

    StreamDecompressor dec{ByteSpan(stream)};
    EXPECT_THROW(dec.NextFrame(), CorruptStreamError);
    EXPECT_TRUE(dec.HasNext());
    EXPECT_THROW(dec.NextFloats(), CorruptStreamError);
    EXPECT_TRUE(dec.HasNext());

    stream[target] = original;
    EXPECT_EQ(dec.NextFloats(), frame0);
    EXPECT_EQ(dec.NextFloats(), frame1);
    EXPECT_FALSE(dec.HasNext());
}

/** Mixed-content input whose chunks pick different pipelines under
 *  mode=auto: a smooth walk, then high-entropy bytes, then a constant
 *  run — one 16 KiB chunk each, repeated. */
Bytes
MixedInput(size_t n_bytes, uint64_t seed)
{
    Bytes data = SmoothInput(n_bytes, seed);
    uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
    for (size_t i = 0; i < n_bytes; ++i) {
        switch ((i / kChunkSize) % 3) {
          case 1:
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            data[i] = static_cast<std::byte>(state >> 56);
            break;
          case 2:
            data[i] = static_cast<std::byte>(i & 3 ? 0x00 : 0x42);
            break;
          default:
            break;  // keep the smooth walk
        }
    }
    return data;
}

class CorruptionAdaptive
    : public ::testing::TestWithParam<const char*> {};

TEST_P(CorruptionAdaptive, V3StructureAndIdTableAreCrossChecked)
{
    // A v3 (mode=auto) container packs each chunk's algorithm id into
    // bits 29..30 of its chunk-table entry. Damage anywhere in the
    // structural prefix — header or chunk table — must throw
    // CorruptStreamError; in particular flipped id bits must never
    // dispatch the wrong per-chunk decoder into silently wrong bytes
    // (out-of-range ids die in the parser, in-range-but-wrong ids die on
    // the decoded-size or content-checksum cross-checks).
    const char* backend = GetParam();
    const Bytes input = MixedInput(4 * kChunkSize + 1000, 0xada7);
    Bytes container = Compress(Algorithm::kSPspeed, ByteSpan(input),
                               Options{}.with_mode("auto"));
    const CompressedInfo info = Inspect(ByteSpan(container));
    ASSERT_TRUE(info.adaptive);
    ASSERT_GE(info.chunk_count, 5u);
    const size_t table_start = ContainerHeaderSize();
    const size_t payload_start =
        table_start + info.chunk_count * sizeof(uint32_t);

    Options options;
    options.executor = &GetExecutor(backend);
    options.threads = 2;

    SweepStats stats;
    ExpectSafeDecode(ByteSpan(container), input, options, SIZE_MAX, -1,
                     payload_start, stats);
    ASSERT_EQ(stats.silent_escapes, 0u);

    const bool all_mutants = std::string_view(backend) == "cpu";
    for (size_t pos = 0; pos < container.size(); ++pos) {
        const auto orig = static_cast<uint8_t>(container[pos]);
        // Structural bytes (header + chunk table) get all three mutants
        // on every backend; payload bytes rotate on the slower gpusim
        // backend as in the v1 sweep.
        const bool structural = pos < payload_start;
        uint8_t mutants[4] = {static_cast<uint8_t>(orig ^ 0x01), 0x00,
                              0xff, 0};
        int first = all_mutants || structural ? 0 : static_cast<int>(pos % 3);
        int last = all_mutants || structural ? 2 : first;
        if (structural && pos >= table_start &&
            (pos - table_start) % sizeof(uint32_t) == 3) {
            // The top byte of a chunk-table entry holds the id bits
            // (29..30): also flip one id bit alone, so the wrong-decoder
            // path is hit with a still-valid size field, not just a
            // bogus size.
            mutants[3] = static_cast<uint8_t>(orig ^ 0x20);
            last = 3;
        }
        for (int m = first; m <= last; ++m) {
            if (mutants[m] == orig) continue;
            container[pos] = static_cast<std::byte>(mutants[m]);
            ExpectSafeDecode(ByteSpan(container), input, options, pos, m,
                             payload_start, stats);
        }
        container[pos] = static_cast<std::byte>(orig);
    }
    EXPECT_LT(stats.silent_escapes, stats.attempts / 100)
        << stats.silent_escapes << " of " << stats.attempts
        << " mutants decoded to wrong bytes";
}

TEST_P(CorruptionAdaptive, V3TruncationAlwaysThrows)
{
    const char* backend = GetParam();
    const Bytes input = MixedInput(3 * kChunkSize + 500, 0xada8);
    const Bytes container = Compress(Algorithm::kSPspeed, ByteSpan(input),
                                     Options{}.with_mode("auto"));
    Options options;
    options.executor = &GetExecutor(backend);
    options.threads = 2;
    for (size_t len = 0; len < container.size(); ++len) {
        g_max_alloc.store(0, std::memory_order_relaxed);
        EXPECT_THROW(Decompress(ByteSpan(container.data(), len), options),
                     CorruptStreamError)
            << "truncated to " << len << " of " << container.size();
        EXPECT_LE(g_max_alloc.load(std::memory_order_relaxed),
                  kMaxSingleAllocation)
            << "oversized allocation at truncation " << len;
    }
}

INSTANTIATE_TEST_SUITE_P(BothBackends, CorruptionAdaptive,
                         ::testing::Values("cpu", "gpusim:4090"),
                         [](const auto& info) {
                             std::string backend = info.param;
                             for (char& c : backend) {
                                 if (c == ':') c = '_';
                             }
                             return backend;
                         });

/** An indexed golden stream for the seek-index sweeps: three SPspeed
 *  frames plus the trailing index. Returns the original bytes too. */
Bytes
GoldenIndexedStream(Bytes& original)
{
    original = SmoothInput(3 * 9000 + 2000, 0x5eed);
    original.resize(original.size() - original.size() % sizeof(float));
    StreamCompressor compressor(Algorithm::kSPspeed);
    const size_t step = 9000 - 9000 % sizeof(float);
    for (size_t at = 0; at < original.size(); at += step) {
        compressor.PutFrame(ByteSpan(original).subspan(
            at, std::min(step, original.size() - at)));
    }
    return compressor.FinishWithIndex();
}

/**
 * The "never mis-seek" property under one mutant: the stream either
 * decodes (via the layout the resolver picked — index or fallback scan)
 * to exactly the original bytes, or throws CorruptStreamError. Silently
 * wrong bytes, other exception types, crashes, and allocation spikes all
 * fail.
 */
void
ExpectSafeSeek(ByteSpan stream, const Bytes& original, size_t pos,
               int mutant)
{
    g_max_alloc.store(0, std::memory_order_relaxed);
    MemoryByteSource source{stream};
    try {
        const Bytes out = DecompressRange(
            source, 0, original.size() / sizeof(float), Options{});
        EXPECT_EQ(out, original)
            << "mutant " << mutant << " at index byte " << pos
            << " mis-seeked to wrong bytes";
    } catch (const CorruptStreamError&) {
        // The expected rejection of a damaged index (or of index bytes
        // scanned as frames after the footer magic was destroyed).
    }
    EXPECT_LE(g_max_alloc.load(std::memory_order_relaxed),
              kMaxSingleAllocation)
        << "oversized allocation for mutant " << mutant << " at byte "
        << pos;
}

TEST(CorruptionSeekIndex, EveryIndexByteMutationRejectedOrHarmless)
{
    Bytes original;
    Bytes stream = GoldenIndexedStream(original);
    {
        // Locate the index region from the clean stream.
        MemoryByteSource source{ByteSpan(stream)};
        const std::optional<SeekIndex> index = TryParseSeekIndex(source);
        ASSERT_TRUE(index.has_value());
        ASSERT_EQ(index->frames.size(), 4u);
        // Clean stream decodes through the index.
        ExpectSafeSeek(ByteSpan(stream), original, SIZE_MAX, -1);

        // Sweep every byte of the entries block and the footer with all
        // three mutants.
        for (size_t pos = index->index_offset; pos < stream.size(); ++pos) {
            const auto orig = static_cast<uint8_t>(stream[pos]);
            const uint8_t mutants[3] = {
                static_cast<uint8_t>(orig ^ 0x01), 0x00, 0xff};
            for (int m = 0; m < 3; ++m) {
                if (mutants[m] == orig) continue;
                stream[pos] = static_cast<std::byte>(mutants[m]);
                ExpectSafeSeek(ByteSpan(stream), original, pos, m);
            }
            stream[pos] = static_cast<std::byte>(orig);
        }
    }
}

TEST(CorruptionSeekIndex, EveryIndexTruncationRejectedOrHarmless)
{
    Bytes original;
    const Bytes stream = GoldenIndexedStream(original);
    MemoryByteSource clean{ByteSpan(stream)};
    const std::optional<SeekIndex> index = TryParseSeekIndex(clean);
    ASSERT_TRUE(index.has_value());

    // Cutting anywhere inside the index region removes the footer magic
    // from EOF: the stream must parse index-less (exact cut at the frame
    // data boundary) or throw — never follow a half-index.
    for (size_t len = index->index_offset; len < stream.size(); ++len) {
        ExpectSafeSeek(ByteSpan(stream.data(), len), original, len, 3);
    }
}

TEST(CorruptionSeekIndex, DamagedFooterThrowsFromEveryEntryPoint)
{
    Bytes original;
    Bytes stream = GoldenIndexedStream(original);
    // Destroy the index checksum (first 8 bytes of the footer).
    const size_t footer = stream.size() - SeekIndex::kFooterSize;
    stream[footer] ^= std::byte{0xff};

    MemoryByteSource source{ByteSpan(stream)};
    EXPECT_THROW(TryParseSeekIndex(source), CorruptStreamError);
    EXPECT_THROW(ResolveStreamLayout(source), CorruptStreamError);
    EXPECT_THROW(StreamDecompressor{ByteSpan(stream)}, CorruptStreamError);
    EXPECT_THROW(
        ParallelStreamDecoder(source, StreamPoolOptions{2, 0}, Options{}),
        CorruptStreamError);
    EXPECT_THROW(DecompressRange(source, 0, 1, Options{}),
                 CorruptStreamError);
}

TEST(CorruptionSeekIndex, ForgedFrameOffsetsNeverReadOutOfBounds)
{
    // Hand-build footers whose entries point outside the stream or
    // overlap; the checksum is made valid so only the semantic validation
    // can reject them. Every case must throw, not read wild.
    Bytes original;
    const Bytes clean = GoldenIndexedStream(original);
    MemoryByteSource clean_source{ByteSpan(clean)};
    const std::optional<SeekIndex> index = TryParseSeekIndex(clean_source);
    ASSERT_TRUE(index.has_value());

    auto rebuild = [&](std::vector<SeekIndexEntry> frames) {
        Bytes forged(clean.begin(),
                     clean.begin() + static_cast<std::ptrdiff_t>(
                                         index->index_offset));
        // AppendSeekIndex itself asserts monotonic prefixes, so serialize
        // the forged entries by hand with a correct checksum.
        Bytes entries;
        ByteWriter wr(entries);
        for (const SeekIndexEntry& f : frames) {
            wr.Put<uint64_t>(f.frame_offset);
            wr.Put<uint64_t>(f.frame_size);
            wr.Put<uint64_t>(f.element_count);
            wr.Put<uint64_t>(f.element_prefix);
        }
        AppendBytes(forged, ByteSpan(entries));
        ByteWriter footer(forged);
        footer.Put<uint64_t>(Checksum64(ByteSpan(entries)));
        footer.Put<uint64_t>(frames.size());
        footer.Put<uint64_t>(entries.size());
        footer.Put<uint32_t>(SeekIndex::kIndexVersion);
        footer.Put<uint32_t>(SeekIndex::kFooterMagic);
        return forged;
    };

    std::vector<SeekIndexEntry> good = index->frames;

    {  // offset past the end of frame data
        std::vector<SeekIndexEntry> frames = good;
        frames[1].frame_offset = index->index_offset + 100;
        Bytes forged = rebuild(frames);
        MemoryByteSource source{ByteSpan(forged)};
        EXPECT_THROW(TryParseSeekIndex(source), CorruptStreamError);
    }
    {  // size overrunning the index region
        std::vector<SeekIndexEntry> frames = good;
        frames.back().frame_size = index->index_offset;
        Bytes forged = rebuild(frames);
        MemoryByteSource source{ByteSpan(forged)};
        EXPECT_THROW(TryParseSeekIndex(source), CorruptStreamError);
    }
    {  // overlapping frames
        std::vector<SeekIndexEntry> frames = good;
        frames[1].frame_offset = frames[0].frame_offset + 1;
        Bytes forged = rebuild(frames);
        MemoryByteSource source{ByteSpan(forged)};
        EXPECT_THROW(TryParseSeekIndex(source), CorruptStreamError);
    }
    {  // inconsistent element prefix sum
        std::vector<SeekIndexEntry> frames = good;
        frames[2].element_prefix += 7;
        Bytes forged = rebuild(frames);
        MemoryByteSource source{ByteSpan(forged)};
        EXPECT_THROW(TryParseSeekIndex(source), CorruptStreamError);
    }
    {  // element count lying about the frame header (mis-seek channel)
        std::vector<SeekIndexEntry> frames = good;
        frames[0].element_count -= 16;
        for (size_t f = 1; f < frames.size(); ++f) {
            frames[f].element_prefix -= 16;
        }
        Bytes forged = rebuild(frames);
        MemoryByteSource source{ByteSpan(forged)};
        // The per-frame header cross-check rejects it at decode time.
        EXPECT_THROW(
            DecompressRange(source, 0,
                            original.size() / sizeof(float) - 16, Options{}),
            CorruptStreamError);
    }
}

}  // namespace
}  // namespace fpc
