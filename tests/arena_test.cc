/**
 * @file
 * Asserts the tentpole property of the ScratchArena (core/arena.h): once
 * a thread's arena is warm, EncodeChunk and DecodeChunk perform zero heap
 * allocations per chunk. The test replaces global operator new/delete
 * with counting versions and measures the allocation delta across a
 * steady-state chunk loop for every algorithm.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/arena.h"
#include "core/pipeline.h"

namespace {

std::atomic<size_t> g_alloc_count{0};

}  // namespace

void*
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace fpc {
namespace {

/** Smooth random-walk words: compressible, exercises the full pipeline. */
Bytes
SmoothChunks(size_t n_chunks)
{
    Bytes data(n_chunks * kChunkSize);
    uint64_t state = 0x5eed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= data.size(); i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    return data;
}

/** High-entropy words: forces the raw-chunk fallback path. */
Bytes
NoisyChunks(size_t n_chunks)
{
    Bytes data(n_chunks * kChunkSize);
    uint64_t s = 0xbadc0ffee0ddf00dull;
    for (size_t i = 0; i + 8 <= data.size(); i += 8) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        std::memcpy(data.data() + i, &s, 8);
    }
    return data;
}

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

TEST(ArenaTest, SteadyStateEncodeLoopDoesNotAllocate)
{
    for (Algorithm algorithm : kAlgorithms) {
        const PipelineSpec& spec = GetPipeline(algorithm);
        const Bytes input = SmoothChunks(8);
        ScratchArena scratch;

        auto encode_all = [&] {
            size_t compressed = 0;
            for (size_t begin = 0; begin < input.size();
                 begin += kChunkSize) {
                bool raw = false;
                compressed += EncodeChunk(spec,
                                          ByteSpan(input).subspan(
                                              begin, kChunkSize),
                                          raw, scratch)
                                  .size();
            }
            return compressed;
        };

        // Two warm-up passes grow every arena buffer to its steady
        // capacity; afterwards the loop must not touch the allocator.
        encode_all();
        encode_all();
        const size_t before = g_alloc_count.load();
        const size_t compressed = encode_all();
        const size_t delta = g_alloc_count.load() - before;
        EXPECT_EQ(delta, 0u)
            << "algorithm " << static_cast<int>(algorithm) << " allocated "
            << delta << " times in the steady-state encode loop";
        EXPECT_GT(compressed, 0u);
    }
}

TEST(ArenaTest, SteadyStateDecodeLoopDoesNotAllocate)
{
    for (Algorithm algorithm : kAlgorithms) {
        const PipelineSpec& spec = GetPipeline(algorithm);
        const Bytes input = SmoothChunks(8);
        ScratchArena scratch;

        // Prepare payloads up front (this phase may allocate freely).
        std::vector<Bytes> payloads;
        std::vector<bool> raw_flags;
        for (size_t begin = 0; begin < input.size(); begin += kChunkSize) {
            bool raw = false;
            ByteSpan payload = EncodeChunk(
                spec, ByteSpan(input).subspan(begin, kChunkSize), raw,
                scratch);
            payloads.emplace_back(payload.begin(), payload.end());
            raw_flags.push_back(raw);
        }
        Bytes decoded(input.size());

        auto decode_all = [&] {
            for (size_t c = 0; c < payloads.size(); ++c) {
                DecodeChunk(spec, ByteSpan(payloads[c]), raw_flags[c],
                            std::span<std::byte>(
                                decoded.data() + c * kChunkSize,
                                kChunkSize),
                            scratch);
            }
        };

        decode_all();
        decode_all();
        const size_t before = g_alloc_count.load();
        decode_all();
        const size_t delta = g_alloc_count.load() - before;
        EXPECT_EQ(delta, 0u)
            << "algorithm " << static_cast<int>(algorithm) << " allocated "
            << delta << " times in the steady-state decode loop";
        EXPECT_EQ(decoded, input);
    }
}

TEST(ArenaTest, RawFallbackChunksDoNotAllocateEither)
{
    const PipelineSpec& spec = GetPipeline(Algorithm::kSPspeed);
    const Bytes input = NoisyChunks(4);
    ScratchArena scratch;

    auto encode_all = [&] {
        size_t raw_chunks = 0;
        for (size_t begin = 0; begin < input.size(); begin += kChunkSize) {
            bool raw = false;
            EncodeChunk(spec, ByteSpan(input).subspan(begin, kChunkSize),
                        raw, scratch);
            raw_chunks += raw ? 1 : 0;
        }
        return raw_chunks;
    };

    encode_all();
    encode_all();
    const size_t before = g_alloc_count.load();
    const size_t raw_chunks = encode_all();
    EXPECT_EQ(g_alloc_count.load() - before, 0u);
    EXPECT_GT(raw_chunks, 0u) << "noisy input should hit the raw fallback";
}

TEST(ArenaTest, CapacityIsBoundedAndReported)
{
    const Bytes input = SmoothChunks(8);
    ScratchArena scratch;
    for (Algorithm algorithm : kAlgorithms) {
        const PipelineSpec& spec = GetPipeline(algorithm);
        for (size_t begin = 0; begin < input.size(); begin += kChunkSize) {
            bool raw = false;
            EncodeChunk(spec, ByteSpan(input).subspan(begin, kChunkSize),
                        raw, scratch);
        }
    }
    // The arena holds a handful of chunk-sized buffers, not the input.
    EXPECT_GT(scratch.CapacityBytes(), 0u);
    EXPECT_LT(scratch.CapacityBytes(), 64 * kChunkSize);
}

}  // namespace
}  // namespace fpc
