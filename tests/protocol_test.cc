/**
 * @file
 * fpcd wire-protocol tests (src/service/protocol.h + server/client):
 * frame round trips, hostile-input sweeps (bit mutations, truncations,
 * memory-bomb length declarations — every one must fail typed, never
 * crash or hang), the daemon's garbage tolerance, and concurrent
 * client roundtrips against a live SocketServer.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "core/codec.h"
#include "core/errc.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace fpc {
namespace {

Bytes
MakePayload(size_t values = 20000)
{
    std::vector<float> data(values);
    for (size_t i = 0; i < values; ++i) {
        data[i] = std::cos(static_cast<float>(i) * 0.002f) * 3.5f;
    }
    return Bytes(AsBytes(data).begin(), AsBytes(data).end());
}

/** A unique, sockaddr_un-sized socket path per test. */
std::string
TestSocketPath(const char* tag)
{
    return "/tmp/fpc_proto_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock";
}

/** RAII socketpair for fd-level frame tests. */
struct SocketPair {
    int fds[2] = {-1, -1};
    SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
    ~SocketPair()
    {
        if (fds[0] >= 0) ::close(fds[0]);
        if (fds[1] >= 0) ::close(fds[1]);
    }
};

TEST(ProtocolTest, RequestFrameRoundTripsEveryField)
{
    ServiceRequest request;
    request.verb = ServiceVerb::kDecompressRange;
    request.tenant = "climate-42";
    request.algorithm = Algorithm::kDPratio;
    request.adaptive = true;
    request.executor = "gpusim:a100";
    request.range_first = 123456789;
    request.range_count = 987;
    request.payload = MakePayload(64);

    const ServiceRequest back = DecodeRequest(ByteSpan(EncodeRequest(request)));
    EXPECT_EQ(back.verb, request.verb);
    EXPECT_EQ(back.tenant, request.tenant);
    EXPECT_EQ(back.algorithm, request.algorithm);
    EXPECT_EQ(back.adaptive, request.adaptive);
    EXPECT_EQ(back.executor, request.executor);
    EXPECT_EQ(back.range_first, request.range_first);
    EXPECT_EQ(back.range_count, request.range_count);
    EXPECT_EQ(back.payload, request.payload);
}

TEST(ProtocolTest, ResponseFrameRoundTripsStatusAndError)
{
    ServiceResponse response;
    response.status = Errc::kBusy;
    response.error = "tenant 'x' throttled";
    const ServiceResponse back =
        DecodeResponse(ByteSpan(EncodeResponse(response)));
    EXPECT_EQ(back.status, Errc::kBusy);
    EXPECT_EQ(back.error, response.error);
    EXPECT_TRUE(back.payload.empty());

    ServiceResponse ok;
    ok.payload = MakePayload(32);
    const ServiceResponse ok_back =
        DecodeResponse(ByteSpan(EncodeResponse(ok)));
    EXPECT_EQ(ok_back.status, Errc::kOk);
    EXPECT_EQ(ok_back.payload, ok.payload);
}

TEST(ProtocolTest, MutationSweepNeverCrashesTheDecoder)
{
    ServiceRequest request;
    request.tenant = "t";
    request.executor = "cpu";
    request.payload = MakePayload(16);
    const Bytes frame = EncodeRequest(request);

    // Flip every bit of the header region and decode: the only allowed
    // outcomes are a clean decode (payload-region flips change data, not
    // framing) or a typed CorruptStreamError. Same for the response.
    std::mt19937 rng(7);
    size_t rejected = 0;
    for (size_t at = 0; at < frame.size(); ++at) {
        for (int bit = 0; bit < 8; ++bit) {
            Bytes mutated = frame;
            mutated[at] ^= std::byte{static_cast<uint8_t>(1u << bit)};
            try {
                (void)DecodeRequest(ByteSpan(mutated));
            } catch (const CorruptStreamError&) {
                ++rejected;
            }
        }
    }
    EXPECT_GT(rejected, 0u) << "no header mutation was ever rejected";

    // Random garbage of assorted sizes, both decoders.
    for (int round = 0; round < 256; ++round) {
        Bytes garbage(rng() % 96);
        for (std::byte& b : garbage) {
            b = std::byte{static_cast<uint8_t>(rng())};
        }
        try {
            (void)DecodeRequest(ByteSpan(garbage));
        } catch (const CorruptStreamError&) {
        }
        try {
            (void)DecodeResponse(ByteSpan(garbage));
        } catch (const CorruptStreamError&) {
        }
    }
}

TEST(ProtocolTest, TruncationSweepFailsTypedInTheHeaderRegion)
{
    ServiceRequest request;
    request.tenant = "tenant";
    request.executor = "gpusim:4090";
    request.payload = MakePayload(16);
    const Bytes frame = EncodeRequest(request);
    // Every prefix that cuts inside the fixed fields must throw; a cut
    // inside the payload region just yields a shorter payload.
    const size_t header_bytes = frame.size() - request.payload.size();
    for (size_t keep = 0; keep < header_bytes; ++keep) {
        EXPECT_THROW(
            (void)DecodeRequest(ByteSpan(frame).first(keep)),
            CorruptStreamError)
            << "truncation at byte " << keep << " decoded";
    }
}

TEST(ProtocolTest, OversizedLengthDeclarationIsRejectedBeforeAllocating)
{
    SocketPair pair;
    const uint32_t bomb = UINT32_MAX;  // a 4 GiB declaration
    ASSERT_EQ(::send(pair.fds[0], &bomb, sizeof bomb, 0),
              static_cast<ssize_t>(sizeof bomb));
    Bytes body;
    try {
        (void)ReadFrame(pair.fds[1], body);
        FAIL() << "4 GiB frame declaration was accepted";
    } catch (const CorruptStreamError& e) {
        EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos);
    }
    // Nothing was allocated for the declared length.
    EXPECT_EQ(body.capacity(), 0u);
}

TEST(ProtocolTest, PeerVanishingMidFrameIsATypedErrorNotAHang)
{
    {
        // Close inside the body: declared 100 bytes, sent 10.
        SocketPair pair;
        const uint32_t declared = 100;
        ASSERT_EQ(::send(pair.fds[0], &declared, sizeof declared, 0),
                  static_cast<ssize_t>(sizeof declared));
        char partial[10] = {};
        ASSERT_EQ(::send(pair.fds[0], partial, sizeof partial, 0),
                  static_cast<ssize_t>(sizeof partial));
        ::close(pair.fds[0]);
        pair.fds[0] = -1;
        Bytes body;
        EXPECT_THROW((void)ReadFrame(pair.fds[1], body),
                     CorruptStreamError);
    }
    {
        // Close inside the 4-byte length prefix itself.
        SocketPair pair;
        const char half[2] = {1, 0};
        ASSERT_EQ(::send(pair.fds[0], half, sizeof half, 0), 2);
        ::close(pair.fds[0]);
        pair.fds[0] = -1;
        Bytes body;
        EXPECT_THROW((void)ReadFrame(pair.fds[1], body),
                     CorruptStreamError);
    }
    {
        // Close at a frame boundary: clean EOF, not an error.
        SocketPair pair;
        ::close(pair.fds[0]);
        pair.fds[0] = -1;
        Bytes body;
        EXPECT_FALSE(ReadFrame(pair.fds[1], body));
    }
}

TEST(ProtocolTest, DaemonAnswersGarbageWithATypedErrorAndSurvives)
{
    ServerConfig config;
    config.socket_path = TestSocketPath("garbage");
    config.service.workers = 1;
    SocketServer server(config);

    // A hostile connection: a well-framed body of garbage bytes. The
    // server must reply with a typed error frame and drop the
    // connection — and keep serving others.
    {
        const int fd = ConnectUnix(config.socket_path);
        Bytes garbage(64, std::byte{0xee});
        WriteFrame(fd, ByteSpan(garbage));
        Bytes reply;
        ASSERT_TRUE(ReadFrame(fd, reply));
        const ServiceResponse response = DecodeResponse(ByteSpan(reply));
        EXPECT_EQ(response.status, Errc::kCorrupt);
        // The connection is dropped after the error reply.
        Bytes after;
        EXPECT_FALSE(ReadFrame(fd, after));
        ::close(fd);
    }
    // A connection that dies mid-frame must not wedge the daemon.
    {
        const int fd = ConnectUnix(config.socket_path);
        const uint32_t declared = 1000;
        ASSERT_EQ(::send(fd, &declared, sizeof declared, MSG_NOSIGNAL),
                  static_cast<ssize_t>(sizeof declared));
        ::close(fd);
    }
    // A well-behaved client still gets full service.
    {
        SocketClient client(config.socket_path);
        ServiceRequest request;
        request.verb = ServiceVerb::kCompress;
        request.payload = MakePayload();
        const ServiceResponse compressed = client.Call(request);
        ASSERT_EQ(compressed.status, Errc::kOk) << compressed.error;
        EXPECT_EQ(compressed.payload,
                  Compress(Algorithm::kSPspeed, ByteSpan(request.payload),
                           Options{}.with_threads(1)));
    }
    server.Stop();
}

TEST(ProtocolTest, ConcurrentClientsRoundTripAgainstOneDaemon)
{
    ServerConfig config;
    config.socket_path = TestSocketPath("concurrent");
    config.service.workers = 4;
    SocketServer server(config);

    constexpr int kClients = 6;
    std::vector<std::thread> clients;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                SocketClient client(config.socket_path);
                const Bytes payload = MakePayload(10000 + 100 * c);
                ServiceRequest compress;
                compress.verb = ServiceVerb::kCompress;
                compress.tenant = "client-" + std::to_string(c);
                compress.algorithm =
                    static_cast<Algorithm>(static_cast<unsigned>(c) % 4);
                compress.payload = payload;
                const ServiceResponse packed = client.Call(compress);
                if (packed.status != Errc::kOk) {
                    failures[c] = "compress: " + packed.error;
                    return;
                }
                ServiceRequest decompress;
                decompress.verb = ServiceVerb::kDecompress;
                decompress.payload = packed.payload;
                const ServiceResponse restored = client.Call(decompress);
                if (restored.status != Errc::kOk) {
                    failures[c] = "decompress: " + restored.error;
                } else if (restored.payload != payload) {
                    failures[c] = "round trip changed the bytes";
                }
            } catch (const std::exception& e) {
                failures[c] = e.what();
            }
        });
    }
    for (std::thread& thread : clients) thread.join();
    for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[c], "") << "client " << c;
    }
    server.Stop();
    ::unlink(config.socket_path.c_str());
}

TEST(ProtocolTest, StatsAndShutdownVerbsWorkOverTheWire)
{
    ServerConfig config;
    config.socket_path = TestSocketPath("control");
    config.service.workers = 1;
    SocketServer server(config);

    SocketClient client(config.socket_path);
    ServiceRequest compress;
    compress.verb = ServiceVerb::kCompress;
    compress.tenant = "ops";
    compress.payload = MakePayload(4096);
    ASSERT_EQ(client.Call(compress).status, Errc::kOk);

    ServiceRequest stats;
    stats.verb = ServiceVerb::kStats;
    const ServiceResponse report = client.Call(stats);
    ASSERT_EQ(report.status, Errc::kOk);
    const std::string json(
        reinterpret_cast<const char*>(report.payload.data()),
        report.payload.size());
    EXPECT_EQ(json.rfind("{\"schema\": \"fpc.telemetry.v6\"", 0), 0u);
    if (kTelemetryEnabled) {
        EXPECT_NE(json.find("\"service\": {\"tenants\": {\"ops\""),
                  std::string::npos);
    }

    ServiceRequest shutdown;
    shutdown.verb = ServiceVerb::kShutdown;
    EXPECT_EQ(client.Call(shutdown).status, Errc::kOk);
    EXPECT_TRUE(
        server.WaitForShutdownFor(std::chrono::milliseconds(2000)));
    server.Stop();
    ::unlink(config.socket_path.c_str());
}

TEST(ProtocolTest, AdminVerbFramesRoundTrip)
{
    for (const ServiceVerb verb :
         {ServiceVerb::kMetrics, ServiceVerb::kHealth,
          ServiceVerb::kServerStats}) {
        ServiceRequest request;
        request.verb = verb;
        const ServiceRequest back =
            DecodeRequest(ByteSpan(EncodeRequest(request)));
        EXPECT_EQ(back.verb, verb);
        EXPECT_TRUE(back.request_id.empty());
    }
}

TEST(ProtocolTest, AdminVerbsAnswerOverTheWire)
{
    ServerConfig config;
    config.socket_path = TestSocketPath("admin");
    config.service.workers = 1;
    SocketServer server(config);
    SocketClient client(config.socket_path);

    ServiceRequest compress;
    compress.verb = ServiceVerb::kCompress;
    compress.tenant = "ops";
    compress.payload = MakePayload(4096);
    ASSERT_EQ(client.Call(compress).status, Errc::kOk);

    const auto text = [](const ServiceResponse& response) {
        return std::string(
            reinterpret_cast<const char*>(response.payload.data()),
            response.payload.size());
    };

    ServiceRequest metrics;
    metrics.verb = ServiceVerb::kMetrics;
    const ServiceResponse exposition = client.Call(metrics);
    ASSERT_EQ(exposition.status, Errc::kOk);
    EXPECT_EQ(text(exposition).rfind("# fpc.metrics.v1\n", 0), 0u);
    if (kTelemetryEnabled) {
        EXPECT_NE(text(exposition).find(
                      "fpc_service_requests_total{tenant=\"ops\""),
                  std::string::npos);
    }

    ServiceRequest health;
    health.verb = ServiceVerb::kHealth;
    const ServiceResponse liveness = client.Call(health);
    ASSERT_EQ(liveness.status, Errc::kOk);
    EXPECT_EQ(text(liveness).rfind("{\"status\": \"ok\"", 0), 0u);

    ServiceRequest stats;
    stats.verb = ServiceVerb::kServerStats;
    const ServiceResponse transport = client.Call(stats);
    ASSERT_EQ(transport.status, Errc::kOk);
    EXPECT_NE(text(transport).find("\"protocol_errors\": 0"),
              std::string::npos);
    EXPECT_NE(text(transport).find("\"draining\": false"),
              std::string::npos);

    server.Stop();
    ::unlink(config.socket_path.c_str());
}

TEST(ProtocolTest, RequestIdRoundTripsThroughTheFrame)
{
    ServiceRequest request;
    request.verb = ServiceVerb::kCompress;
    request.tenant = "t";
    request.request_id = "job-42.retry_1";
    request.payload = MakePayload(16);
    const ServiceRequest back =
        DecodeRequest(ByteSpan(EncodeRequest(request)));
    EXPECT_EQ(back.request_id, request.request_id);
    EXPECT_EQ(back.payload, request.payload);

    // No id -> flag clear -> decodes back empty.
    request.request_id.clear();
    EXPECT_TRUE(DecodeRequest(ByteSpan(EncodeRequest(request)))
                    .request_id.empty());
}

TEST(ProtocolTest, HostileRequestIdsAreRejectedTyped)
{
    ServiceRequest request;
    request.verb = ServiceVerb::kCompress;
    request.tenant = "t";
    request.request_id = "abc";
    const Bytes frame = EncodeRequest(request);
    // Layout (protocol.h): tenant "t", executor "" -> the id length
    // byte sits at 25+T+E = 26, the id bytes at 27..29 (no payload).
    ASSERT_EQ(frame.size(), 30u);

    // An id byte outside [A-Za-z0-9._-].
    Bytes bad_charset = frame;
    bad_charset[27] = std::byte{' '};
    EXPECT_THROW((void)DecodeRequest(ByteSpan(bad_charset)),
                 CorruptStreamError);

    // Flag bit set but a zero-length id.
    Bytes zero_len = frame;
    zero_len[26] = std::byte{0};
    EXPECT_THROW((void)DecodeRequest(ByteSpan(zero_len)),
                 CorruptStreamError);

    // A declared id length running past the frame end.
    Bytes overrun = frame;
    overrun[26] = std::byte{64};
    EXPECT_THROW((void)DecodeRequest(ByteSpan(overrun)),
                 CorruptStreamError);

    // Unknown flag bits must be rejected, not silently ignored — they
    // are the protocol's forward-compatibility tripwire.
    Bytes bad_flags = frame;
    bad_flags[6] = std::byte{0x80};
    EXPECT_THROW((void)DecodeRequest(ByteSpan(bad_flags)),
                 CorruptStreamError);

    // Oversized ids never leave the client: EncodeRequest refuses.
    request.request_id = std::string(kMaxRequestIdBytes + 1, 'a');
    EXPECT_THROW((void)EncodeRequest(request), UsageError);
}

TEST(ProtocolTest, DrainDropsNoInFlightRequest)
{
    ServerConfig config;
    config.socket_path = TestSocketPath("drain");
    config.service.workers = 1;
    // Dispatch held back, so the request is provably *queued* (not yet
    // executing) when the drain begins — the hardest case to honour.
    config.service.start_paused = true;
    SocketServer server(config);

    ServiceResponse response;
    std::thread caller([&] {
        SocketClient client(config.socket_path);
        ServiceRequest request;
        request.verb = ServiceVerb::kCompress;
        request.tenant = "drain";
        request.request_id = "drain-proof";
        request.payload = MakePayload(4096);
        response = client.Call(request);
    });

    // Wait until the scheduler holds the request.
    for (int i = 0; i < 500 && server.service().QueueDepth() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(server.service().QueueDepth(), 1u);

    std::thread drainer(
        [&] { server.Drain(std::chrono::milliseconds(10000)); });
    // The drain must report itself while it waits for the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_NE(server.HealthJson().find("\"status\": \"draining\""),
              std::string::npos);

    server.service().Resume();
    drainer.join();
    caller.join();

    EXPECT_EQ(response.status, Errc::kOk);
    EXPECT_FALSE(response.payload.empty());
    ::unlink(config.socket_path.c_str());
}

}  // namespace
}  // namespace fpc
