/**
 * @file
 * GPU execution-model tests: warp/block primitive correctness against
 * serial references, and the paper's central cross-device compatibility
 * property — the GPU-path codecs must emit byte-identical compressed
 * streams, and streams must decompress correctly on the *other* device.
 */
#include <gtest/gtest.h>

#include "core/codec.h"
#include "data/datasets.h"
#include "data/fields.h"
#include "gpusim/kernels.h"
#include "gpusim/primitives.h"
#include "util/hash.h"
#include "util/scan.h"

namespace fpc::gpusim {
namespace {

TEST(Primitives, ShuffleXorSwapsLanes)
{
    WarpReg<uint32_t> reg;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) reg[lane] = lane;
    WarpReg<uint32_t> out = ShuffleXor(reg, 5);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        EXPECT_EQ(out[lane], lane ^ 5u);
    }
}

TEST(Primitives, BallotPacksPredicates)
{
    WarpReg<bool> pred{};
    pred[0] = pred[3] = pred[31] = true;
    EXPECT_EQ(Ballot(pred), (1u << 0) | (1u << 3) | (1u << 31));
}

TEST(Primitives, WarpReduceMaxMatchesSerial)
{
    Rng rng(1);
    for (int t = 0; t < 100; ++t) {
        WarpReg<uint64_t> reg;
        uint64_t expect = 0;
        for (auto& v : reg) {
            v = rng.Next();
            expect = std::max(expect, v);
        }
        EXPECT_EQ(WarpReduceMax(reg), expect);
    }
}

TEST(Primitives, WarpScanMatchesSerial)
{
    Rng rng(2);
    WarpReg<uint32_t> reg;
    for (auto& v : reg) v = static_cast<uint32_t>(rng.NextBelow(1000));
    WarpReg<uint32_t> scanned = WarpInclusiveScan(reg);
    uint32_t running = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        running += reg[lane];
        EXPECT_EQ(scanned[lane], running);
    }
}

TEST(Primitives, BlockScanMatchesSerialForAllSizes)
{
    Rng rng(3);
    ThreadBlock block(0, 256);
    for (size_t n : {size_t{0}, size_t{1}, size_t{31}, size_t{32},
                     size_t{33}, size_t{1000}, size_t{4096}}) {
        std::vector<uint32_t> values(n);
        for (auto& v : values) v = static_cast<uint32_t>(rng.NextBelow(100));
        std::vector<uint32_t> expected = values;
        uint32_t expected_total =
            ExclusiveScan(std::span<uint32_t>(expected));
        std::vector<uint32_t> actual = values;
        uint32_t total =
            BlockExclusiveScan(block, std::span<uint32_t>(actual));
        EXPECT_EQ(total, expected_total) << n;
        EXPECT_EQ(actual, expected) << n;
    }
}

TEST(Primitives, BlockScanModularWraparound)
{
    // DIFFMS decode relies on modular associativity of the scan.
    ThreadBlock block(0, 256);
    std::vector<uint32_t> values(100, 0xf0000000u);
    std::vector<uint32_t> expected = values;
    ExclusiveScan(std::span<uint32_t>(expected));
    BlockExclusiveScan(block, std::span<uint32_t>(values));
    EXPECT_EQ(values, expected);
}

TEST(Primitives, BitTransposeIsInvolutionAndCorrect)
{
    Rng rng(4);
    WarpReg<uint32_t> rows;
    for (auto& r : rows) r = static_cast<uint32_t>(rng.Next());
    WarpReg<uint32_t> t = WarpBitTranspose(rows);
    // Element check: T[j] bit i == rows[i] bit j.
    for (unsigned j = 0; j < 32; ++j) {
        for (unsigned i = 0; i < 32; ++i) {
            EXPECT_EQ((t[j] >> i) & 1u, (rows[i] >> j) & 1u)
                << "i=" << i << " j=" << j;
        }
    }
    EXPECT_EQ(WarpBitTranspose(t), rows);
}

TEST(Primitives, DecoupledLookbackComputesPrefixes)
{
    const size_t n = 200;
    Rng rng(5);
    std::vector<uint64_t> aggregates(n);
    for (auto& a : aggregates) a = rng.NextBelow(1000);

    DecoupledLookback lookback(n);
    std::vector<uint64_t> prefixes(n);
    // Publish in a scrambled order, then resolve in another order; the
    // protocol must still produce correct exclusive prefixes.
    for (size_t b = 0; b < n; ++b) {
        lookback.PublishAggregate(b, aggregates[b]);
    }
    for (size_t b = n; b-- > 0;) {
        prefixes[b] = lookback.ResolvePrefix(b);
    }
    uint64_t running = 0;
    for (size_t b = 0; b < n; ++b) {
        EXPECT_EQ(prefixes[b], running);
        running += aggregates[b];
    }
}

TEST(SharedMemory, AllocatesAndEnforcesCapacity)
{
    SharedMemory shared;
    auto a = shared.Alloc<uint32_t>(1024);
    EXPECT_EQ(a.size(), 1024u);
    a[0] = 42;
    auto b = shared.Alloc<uint64_t>(1024);
    b[1023] = 7;
    EXPECT_EQ(a[0], 42u);  // no overlap
    shared.Reset();
    EXPECT_EQ(shared.Used(), 0u);
}

// ---- Cross-device compatibility (the paper's headline property) ----

class CrossDevice : public ::testing::TestWithParam<size_t> {};

const Algorithm kAll[] = {Algorithm::kSPspeed, Algorithm::kSPratio,
                          Algorithm::kDPspeed, Algorithm::kDPratio};

TEST_P(CrossDevice, IdenticalStreamsAndInterchangeableDecode)
{
    Algorithm algorithm = kAll[GetParam()];
    Options cpu;
    cpu.with_executor("cpu");
    Options gpu;
    gpu.with_executor("gpusim:4090");

    std::vector<Bytes> inputs;
    {
        auto f = data::ToFloats(data::SmoothField(30000, 8, 5, 0.002));
        Bytes b(f.size() * 4);
        std::memcpy(b.data(), f.data(), b.size());
        inputs.push_back(std::move(b));
    }
    {
        auto d = data::QuantizedObservations(20000, 9, 1.0 / 1024.0);
        Bytes b(d.size() * 8);
        std::memcpy(b.data(), d.data(), b.size());
        inputs.push_back(std::move(b));
    }
    {
        Rng rng(10);
        Bytes b(50001);
        for (auto& x : b) x = static_cast<std::byte>(rng.Next() & 0xff);
        inputs.push_back(std::move(b));
    }

    for (const Bytes& input : inputs) {
        Bytes from_cpu = Compress(algorithm, ByteSpan(input), cpu);
        Bytes from_gpu = Compress(algorithm, ByteSpan(input), gpu);
        // Byte-identical compressed streams.
        ASSERT_EQ(from_cpu, from_gpu) << AlgorithmName(algorithm);
        // Compress on one device, decompress on the other.
        EXPECT_EQ(Decompress(ByteSpan(from_cpu), gpu), input);
        EXPECT_EQ(Decompress(ByteSpan(from_gpu), cpu), input);
    }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CrossDevice,
                         ::testing::Range(size_t{0}, size_t{4}),
                         [](const auto& info) {
                             return std::string(
                                 AlgorithmName(kAll[info.param]));
                         });

TEST(Device, LaunchRunsEveryBlock)
{
    Device device(Rtx4090Profile());
    std::vector<std::atomic<int>> hits(64);
    device.Launch(64, [&](ThreadBlock& block) {
        hits[block.BlockId()].fetch_add(1);
        EXPECT_EQ(block.NumThreads(), 256u);
        EXPECT_EQ(block.NumWarps(), 8u);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_EQ(device.BlocksExecuted(), 64u);
}

TEST(Device, ProfilesDiffer)
{
    EXPECT_GT(Rtx4090Profile().num_sms, A100Profile().num_sms);
    EXPECT_LT(Rtx4090Profile().blocks_per_sm, A100Profile().blocks_per_sm);
}

}  // namespace
}  // namespace fpc::gpusim
