# ctest driver for tools/check_stats_schema.py, registered by
# tests/CMakeLists.txt as
#   cmake -DFPCZIP=... -DPYTHON=... -DCHECKER=... -DWORK_DIR=...
#         -DTELEMETRY=<ON|OFF> -P stats_schema.cmake
#
# Runs `fpczip --stats` for one speed and one ratio algorithm, captures
# the telemetry JSON lines from stderr, and validates them field-by-field
# with the Python schema checker; also runs a decompress with
# --stats-file and --trace so the fpc.telemetry.v3 decode digests and the
# fpc.trace.v1 timeline go through the same checker. In FPC_TELEMETRY=0
# builds the lines still appear but stay empty, so the checker runs with
# --allow-empty.

if(NOT FPCZIP OR NOT PYTHON OR NOT CHECKER OR NOT WORK_DIR)
    message(FATAL_ERROR
        "usage: cmake -DFPCZIP=... -DPYTHON=... -DCHECKER=... -DWORK_DIR=... -P stats_schema.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(input "${WORK_DIR}/input.bin")
set(pattern "stats-schema-0123456789abcdefghijklmnopqrstuvwxyz-")
set(data "")
foreach(i RANGE 0 2047)
    string(APPEND data "${pattern}")
endforeach()
file(WRITE "${input}" "${data}")

set(stats_log "${WORK_DIR}/stats.jsonl")
file(WRITE "${stats_log}" "")
foreach(algorithm SPspeed DPratio)
    execute_process(
        COMMAND "${FPCZIP}" -c -a ${algorithm} --stats
            "${input}" "${WORK_DIR}/${algorithm}.fpcz"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "fpczip -c -a ${algorithm} --stats exited ${rc}:\n${out}\n${err}")
    endif()
    file(APPEND "${stats_log}" "${err}")
endforeach()

# Decompress with --stats-file and --trace: both artifacts are JSON the
# checker recognises (telemetry v3 with decode-side digests, trace v1).
set(stats_file "${WORK_DIR}/decode-stats.json")
set(trace_file "${WORK_DIR}/decode-trace.json")
execute_process(
    COMMAND "${FPCZIP}" -d "--stats-file=${stats_file}"
        "--trace=${trace_file}"
        "${WORK_DIR}/SPspeed.fpcz" "${WORK_DIR}/SPspeed.out"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fpczip -d --stats-file --trace exited ${rc}:\n${out}\n${err}")
endif()
foreach(artifact "${stats_file}" "${trace_file}")
    if(NOT EXISTS "${artifact}")
        message(FATAL_ERROR "fpczip did not write ${artifact}")
    endif()
    file(READ "${artifact}" artifact_content)
    file(APPEND "${stats_log}" "${artifact_content}")
endforeach()

# Ranged read over a seekable v2 stream: the telemetry line must carry a
# populated "ranged" block (calls/chunks_decoded/chunks_skipped/...),
# which the checker validates field-by-field.
set(ranged_stats "${WORK_DIR}/ranged-stats.json")
execute_process(
    COMMAND "${FPCZIP}" -c -a SPspeed --frame-bytes=32k
        "${input}" "${WORK_DIR}/stream.fpcz"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fpczip -c --frame-bytes exited ${rc}:\n${out}\n${err}")
endif()
execute_process(
    COMMAND "${FPCZIP}" cat --range=10000:2000
        "--stats-file=${ranged_stats}"
        "${WORK_DIR}/stream.fpcz" "${WORK_DIR}/stream.slice"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fpczip cat --range --stats-file exited ${rc}:\n${out}\n${err}")
endif()
if(NOT EXISTS "${ranged_stats}")
    message(FATAL_ERROR "fpczip cat --range did not write ${ranged_stats}")
endif()
file(READ "${ranged_stats}" ranged_content)
file(APPEND "${stats_log}" "${ranged_content}")

set(flags "")
if(NOT TELEMETRY)
    set(flags "--allow-empty")
endif()
execute_process(
    COMMAND "${PYTHON}" "${CHECKER}" ${flags} "${stats_log}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "schema check failed (${rc}):\n${out}\n${err}")
endif()

message(STATUS "stats_schema test passed: ${out}")
