/**
 * @file
 * Random access and parallel streaming decode (DESIGN.md "Container v2 &
 * random access"):
 *
 *  - DecompressRange bit-identity against the same slice of a full
 *    decode, on all four algorithms and both backends, across the edge
 *    cases that matter: ranges on chunk boundaries, ranges spanning
 *    frames, the empty range, single elements, and first+count past the
 *    total (UsageError, not a short read);
 *  - the chunk-skipping guarantee, asserted through the telemetry ranged
 *    counters: a small range inside a large frame decodes only the
 *    covering 16 KiB chunks (DPratio's whole-input FCM pre-stage
 *    legitimately decodes the whole covering frame and is pinned to);
 *  - ByteSource equivalence: memory, pread, and mmap backings return the
 *    same bytes, and the fd path reads far less than the file for a
 *    small range;
 *  - StreamCompressor::FinishWithIndex invariants and v1 compatibility:
 *    an indexed stream's frame bytes are byte-identical to the unindexed
 *    stream, and index-less streams still resolve by sequential scan;
 *  - ParallelStreamDecoder: ordered delivery equal to the serial decode
 *    for every worker/in-flight combination, bounded pools, per-frame
 *    error delivery at the failing frame's turn, and telemetry shard
 *    aggregation.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/codec.h"
#include "core/container.h"
#include "core/executor.h"
#include "core/stream.h"
#include "core/telemetry.h"
#include "util/byte_source.h"

namespace fpc {
namespace {

/** Deterministic smooth values: compressible, so coded chunks are hit. */
template <typename T>
std::vector<T>
SmoothValues(size_t n, uint64_t seed)
{
    std::vector<T> values(n);
    uint64_t state = seed;
    double x = 1.0;
    for (size_t i = 0; i < n; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += (static_cast<double>((state >> 33) & 0x3ff) - 512.0) / 4096.0;
        values[i] = static_cast<T>(x);
    }
    return values;
}

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

constexpr const char* kBackends[] = {"cpu", "gpusim:4090"};

/** Indexed stream of @p frames frames over @p original (raw bytes). */
Bytes
MakeIndexedStream(Algorithm algorithm, const Bytes& original, size_t frames)
{
    const size_t word = AlgorithmWordSize(algorithm);
    const size_t elements = original.size() / word;
    const size_t per_frame = std::max<size_t>(1, elements / frames) * word;
    StreamCompressor compressor(algorithm);
    for (size_t at = 0; at < original.size(); at += per_frame) {
        compressor.PutFrame(ByteSpan(original).subspan(
            at, std::min(per_frame, original.size() - at)));
    }
    return compressor.FinishWithIndex();
}

TEST(SeekIndexFormat, AppendAndReparseRoundTrips)
{
    const auto values = SmoothValues<float>(40000, 1);
    StreamCompressor compressor(Algorithm::kSPspeed);
    compressor.PutFloats(std::span<const float>(values.data(), 15000));
    compressor.PutFloats(std::span<const float>(values.data() + 15000,
                                                25000));
    const size_t unindexed_size = compressor.Stream().size();
    const Bytes& stream = compressor.FinishWithIndex();

    // v1 compatibility: the frame bytes are untouched; the index is a
    // pure suffix.
    EXPECT_EQ(stream.size(), unindexed_size +
                                 2 * SeekIndex::kEntrySize +
                                 SeekIndex::kFooterSize);

    MemoryByteSource source{ByteSpan(stream)};
    const std::optional<SeekIndex> index = TryParseSeekIndex(source);
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(index->index_offset, unindexed_size);
    ASSERT_EQ(index->frames.size(), 2u);
    EXPECT_EQ(index->frames[0].element_count, 15000u);
    EXPECT_EQ(index->frames[1].element_count, 25000u);
    EXPECT_EQ(index->frames[1].element_prefix, 15000u);
    EXPECT_EQ(index->TotalElements(), 40000u);
    EXPECT_EQ(index->FrameCovering(0), 0u);
    EXPECT_EQ(index->FrameCovering(14999), 0u);
    EXPECT_EQ(index->FrameCovering(15000), 1u);
    EXPECT_EQ(index->FrameCovering(39999), 1u);

    // FinishWithIndex is idempotent; PutFrame afterwards is an error.
    EXPECT_EQ(compressor.FinishWithIndex().size(), stream.size());
    EXPECT_THROW(compressor.PutFloats(std::span<const float>(
                     values.data(), 4)),
                 UsageError);
}

TEST(SeekIndexFormat, UnalignedFramesRefuseAnIndex)
{
    StreamCompressor compressor(Algorithm::kSPspeed);
    Bytes odd(6);  // not a multiple of sizeof(float)
    compressor.PutFrame(ByteSpan(odd));
    EXPECT_THROW(compressor.FinishWithIndex(), UsageError);
}

TEST(StreamLayoutResolve, IndexlessStreamScansSequentially)
{
    const auto values = SmoothValues<double>(9000, 2);
    StreamCompressor compressor(Algorithm::kDPspeed);
    compressor.PutDoubles(std::span<const double>(values.data(), 4000));
    compressor.PutDoubles(std::span<const double>(values.data() + 4000,
                                                  5000));
    const Bytes& stream = compressor.Stream();  // no index appended

    MemoryByteSource source{ByteSpan(stream)};
    const StreamLayout layout = ResolveStreamLayout(source);
    EXPECT_EQ(layout.format, StreamLayout::Format::kStream);
    EXPECT_FALSE(layout.from_index);
    ASSERT_EQ(layout.frames.size(), 2u);
    EXPECT_EQ(layout.frames[0].element_count, 4000u);
    EXPECT_EQ(layout.frames[1].element_count, 5000u);
    EXPECT_EQ(layout.frames[1].element_prefix, 4000u);
    EXPECT_EQ(layout.frames_end, stream.size());

    // The scan and the index agree on the same stream.
    const Bytes& indexed = compressor.FinishWithIndex();
    MemoryByteSource indexed_source{ByteSpan(indexed)};
    const StreamLayout from_index = ResolveStreamLayout(indexed_source);
    EXPECT_TRUE(from_index.from_index);
    ASSERT_EQ(from_index.frames.size(), 2u);
    for (size_t f = 0; f < 2; ++f) {
        EXPECT_EQ(from_index.frames[f].frame_offset,
                  layout.frames[f].frame_offset);
        EXPECT_EQ(from_index.frames[f].frame_size,
                  layout.frames[f].frame_size);
        EXPECT_EQ(from_index.frames[f].element_count,
                  layout.frames[f].element_count);
    }
}

TEST(StreamLayoutResolve, BareContainerIsOnePseudoFrame)
{
    const auto values = SmoothValues<float>(20000, 3);
    const Bytes container =
        Compress(Algorithm::kSPratio, AsBytes(std::span<const float>(
                                          values.data(), values.size())));
    MemoryByteSource source{ByteSpan(container)};
    const StreamLayout layout = ResolveStreamLayout(source);
    EXPECT_EQ(layout.format, StreamLayout::Format::kContainer);
    ASSERT_EQ(layout.frames.size(), 1u);
    EXPECT_EQ(layout.frames[0].frame_offset, 0u);
    EXPECT_EQ(layout.frames[0].frame_size, container.size());
    EXPECT_EQ(layout.frames[0].element_count, 20000u);
}

TEST(StreamLayoutResolve, EmptySourceHasNoFrames)
{
    MemoryByteSource source{ByteSpan()};
    const StreamLayout layout = ResolveStreamLayout(source);
    EXPECT_TRUE(layout.frames.empty());
    EXPECT_EQ(layout.TotalElements(), 0u);
}

/** Bit-identity of every ranged read against a full-decode slice. */
class RangeIdentity
    : public ::testing::TestWithParam<std::tuple<size_t, const char*>> {};

TEST_P(RangeIdentity, MatchesFullDecodeSlice)
{
    auto [algo_idx, backend] = GetParam();
    const Algorithm algorithm = kAllAlgorithms[algo_idx];
    const size_t word = AlgorithmWordSize(algorithm);
    // ~3.2 frames of ~5 chunks each, so ranges can span frames and every
    // frame spans several chunks. kChunkSize elements per frame boundary
    // would be too aligned — use an odd element count.
    const size_t elements = (5 * kChunkSize / word) * 3 + 1237;
    Bytes original;
    if (word == 4) {
        const auto values = SmoothValues<float>(elements, 40 + algo_idx);
        original = Bytes(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    } else {
        const auto values = SmoothValues<double>(elements, 40 + algo_idx);
        original = Bytes(AsBytes(std::span<const double>(values)).begin(),
                         AsBytes(std::span<const double>(values)).end());
    }
    const Bytes stream = MakeIndexedStream(algorithm, original, 3);

    Options options;
    options.executor = &GetExecutor(backend);
    MemoryByteSource source{ByteSpan(stream)};
    const StreamLayout layout = ResolveStreamLayout(source);
    ASSERT_GE(layout.frames.size(), 3u);
    const uint64_t frame1_start = layout.frames[1].element_prefix;
    const size_t chunk_elements = kChunkSize / word;

    const struct {
        uint64_t first;
        uint64_t count;
    } cases[] = {
        {0, 1},                                  // first element
        {0, elements},                           // everything
        {elements - 1, 1},                       // last element
        {chunk_elements, chunk_elements},        // exact chunk 1
        {chunk_elements - 3, 7},                 // chunk boundary straddle
        {frame1_start - 5, 11},                  // frame boundary straddle
        {7, 0},                                  // empty range
        {frame1_start, chunk_elements + 13},     // frame start
        {3, elements - 3},                       // all but a prefix
    };
    for (const auto& c : cases) {
        const Bytes got = DecompressRange(source, c.first, c.count, options);
        ASSERT_EQ(got.size(), c.count * word)
            << "first=" << c.first << " count=" << c.count;
        EXPECT_TRUE(std::equal(got.begin(), got.end(),
                               original.begin() +
                                   static_cast<std::ptrdiff_t>(c.first *
                                                               word)))
            << "range [" << c.first << ", " << c.first + c.count
            << ") differs from the full-decode slice";
    }

    // Past-the-end ranges are usage errors, not short reads.
    EXPECT_THROW(DecompressRange(source, 0, elements + 1, options),
                 UsageError);
    EXPECT_THROW(DecompressRange(source, elements, 1, options), UsageError);
    // Empty ranges are satisfiable anywhere — at the exact end and past
    // it — and return empty bytes instead of throwing.
    EXPECT_TRUE(DecompressRange(source, elements, 0, options).empty());
    EXPECT_TRUE(DecompressRange(source, elements + 5, 0, options).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsBothBackends, RangeIdentity,
    ::testing::Combine(::testing::Range(size_t{0}, size_t{4}),
                       ::testing::ValuesIn(kBackends)),
    [](const auto& info) {
        std::string backend = std::get<1>(info.param);
        for (char& c : backend) {
            if (c == ':') c = '_';
        }
        return std::string(AlgorithmName(
                   kAllAlgorithms[std::get<0>(info.param)])) +
               "_" + backend;
    });

TEST(RangeEdgeCases, EmptyRangesOnZeroElementStreams)
{
    // A zero-element container: the empty range is satisfiable at any
    // first_value (there is nothing it could miss), while any non-empty
    // range is past the end.
    const Bytes container = Compress(Algorithm::kSPspeed, ByteSpan());
    MemoryByteSource source{ByteSpan(container)};
    EXPECT_TRUE(DecompressRange(source, 0, 0, Options{}).empty());
    EXPECT_TRUE(DecompressRange(source, 9, 0, Options{}).empty());
    EXPECT_THROW(DecompressRange(source, 0, 1, Options{}), UsageError);

    // The typed facade agrees: count == 0 returns empty, not UsageError.
    Codec codec(Algorithm::kSPspeed);
    EXPECT_TRUE(codec.decompress_range(ByteSpan(container), 0, 0).empty());
    EXPECT_TRUE(
        codec.decompress_range_as<float>(ByteSpan(container), 3, 0).empty());
}

TEST(RangeEdgeCases, FacadeCountZeroOnNonEmptyStream)
{
    const auto values = SmoothValues<float>(20000, 13);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    const Bytes stream = MakeIndexedStream(Algorithm::kSPspeed, original, 2);

    Codec codec(Algorithm::kSPspeed);
    EXPECT_TRUE(codec.decompress_range(ByteSpan(stream), 0, 0).empty());
    EXPECT_TRUE(codec.decompress_range(ByteSpan(stream), 20000, 0).empty());
    EXPECT_TRUE(
        codec.decompress_range_as<float>(ByteSpan(stream), 20005, 0)
            .empty());
}

TEST(RangeTelemetry, SmallRangeDecodesOnlyCoveringChunks)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "FPC_TELEMETRY=0";
    const auto values = SmoothValues<float>(40 * kChunkSize / 4, 50);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    // One big frame of 40 chunks.
    const Bytes stream =
        MakeIndexedStream(Algorithm::kSPspeed, original, 1);

    Telemetry sink;
    Options options = Options{}.with_telemetry(&sink);
    MemoryByteSource source{ByteSpan(stream)};
    // 10 elements inside chunk 17.
    const uint64_t first = 17 * (kChunkSize / 4) + 100;
    const Bytes got = DecompressRange(source, first, 10, options);
    ASSERT_EQ(got.size(), 40u);

    const TelemetrySnapshot snap = sink.Snapshot();
    EXPECT_EQ(snap.ranged.calls, 1u);
    EXPECT_EQ(snap.ranged.elements, 10u);
    EXPECT_EQ(snap.ranged.frames_decoded, 1u);
    EXPECT_EQ(snap.ranged.chunks_decoded, 1u);   // exactly chunk 17
    EXPECT_EQ(snap.ranged.chunks_skipped, 39u);  // the other 39
    EXPECT_EQ(snap.ranged.index_hits, 1u);
    EXPECT_GT(snap.ranged.io_reads, 0u);
    // The executor-side chunk counter agrees: only one chunk decoded.
    EXPECT_EQ(snap.counters.chunks_decoded, 1u);
    // And the I/O telemetry shows the read stayed far below the stream.
    EXPECT_LT(snap.ranged.io_bytes, stream.size() / 2);
}

TEST(RangeTelemetry, DPratioPreStageDecodesWholeCoveringFrame)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "FPC_TELEMETRY=0";
    const auto values = SmoothValues<double>(6 * kChunkSize / 8, 51);
    const Bytes original(AsBytes(std::span<const double>(values)).begin(),
                         AsBytes(std::span<const double>(values)).end());
    const Bytes stream =
        MakeIndexedStream(Algorithm::kDPratio, original, 2);

    Telemetry sink;
    Options options = Options{}.with_telemetry(&sink);
    MemoryByteSource source{ByteSpan(stream)};
    const Bytes got = DecompressRange(source, 5, 10, options);
    ASSERT_EQ(got.size(), 80u);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), original.begin() + 40));

    const TelemetrySnapshot snap = sink.Snapshot();
    EXPECT_EQ(snap.ranged.frames_decoded, 1u);
    // FCM is a whole-input pre-stage: the covering frame decodes fully,
    // the other frame is untouched.
    EXPECT_EQ(snap.ranged.chunks_skipped, 0u);
    EXPECT_GT(snap.ranged.chunks_decoded, 0u);
}

TEST(RangeTyped, ValidatesElementWidth)
{
    const auto values = SmoothValues<float>(30000, 6);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    const Bytes stream =
        MakeIndexedStream(Algorithm::kSPspeed, original, 2);

    Codec codec(Algorithm::kSPspeed);
    const std::vector<float> slice =
        codec.decompress_range_as<float>(ByteSpan(stream), 12345, 678);
    ASSERT_EQ(slice.size(), 678u);
    EXPECT_TRUE(std::equal(
        slice.begin(), slice.end(), values.begin() + 12345,
        [](float a, float b) {
            return std::memcmp(&a, &b, sizeof(float)) == 0;
        }));
    EXPECT_THROW(
        codec.decompress_range_as<double>(ByteSpan(stream), 12345, 678),
        UsageError);
}

TEST(ByteSourceEquivalence, MemoryPreadAndMmapAgree)
{
    const auto values = SmoothValues<float>(60000, 7);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    const Bytes stream =
        MakeIndexedStream(Algorithm::kSPspeed, original, 4);

    const std::string path =
        ::testing::TempDir() + "/fpc_seek_test_stream.fpcz";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(stream.data()),
                  static_cast<std::streamsize>(stream.size()));
        ASSERT_TRUE(out.good());
    }

    MemoryByteSource memory{ByteSpan(stream)};
    const Bytes want = DecompressRange(memory, 30000, 2000, Options{});

    for (ReadStrategy strategy :
         {ReadStrategy::kPread, ReadStrategy::kMmap, ReadStrategy::kAuto}) {
        std::unique_ptr<ByteSource> file = OpenByteSource(path, strategy);
        ASSERT_EQ(file->Size(), stream.size());
        EXPECT_EQ(DecompressRange(*file, 30000, 2000, Options{}), want);
    }

    // The pread path must have touched far fewer bytes than the file.
    std::unique_ptr<ByteSource> fd =
        OpenByteSource(path, ReadStrategy::kPread);
    (void)DecompressRange(*fd, 30000, 100, Options{});
    EXPECT_LT(fd->Stats().bytes, stream.size() / 2);

    std::remove(path.c_str());
}

TEST(ParallelDecode, OrderedDeliveryAcrossPoolShapes)
{
    const auto values = SmoothValues<float>(90000, 8);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    const Bytes stream =
        MakeIndexedStream(Algorithm::kSPspeed, original, 7);
    MemoryByteSource source{ByteSpan(stream)};
    const size_t frame_count = ResolveStreamLayout(source).frames.size();
    ASSERT_GE(frame_count, 7u);

    const StreamPoolOptions shapes[] = {
        {1, 1}, {2, 2}, {4, 2}, {4, 8}, {0, 0}, {64, 3},
    };
    for (const StreamPoolOptions& shape : shapes) {
        ParallelStreamDecoder decoder(source, shape, Options{});
        EXPECT_EQ(decoder.FrameCount(), frame_count);
        EXPECT_TRUE(decoder.UsedIndex());
        // Worker count is clamped to the frame count.
        EXPECT_LE(static_cast<size_t>(decoder.Workers()), frame_count);
        Bytes all;
        while (decoder.HasNext()) {
            const Bytes frame = decoder.NextFrame();
            AppendBytes(all, ByteSpan(frame));
        }
        EXPECT_EQ(all, original)
            << "workers=" << shape.workers
            << " in_flight=" << shape.max_in_flight;
        EXPECT_THROW(decoder.NextFrame(), CorruptStreamError);
    }
}

TEST(ParallelDecode, IndexlessStreamAndBareContainerWork)
{
    const auto values = SmoothValues<double>(20000, 9);
    const Bytes original(AsBytes(std::span<const double>(values)).begin(),
                         AsBytes(std::span<const double>(values)).end());

    StreamCompressor compressor(Algorithm::kDPspeed);
    compressor.PutFrame(ByteSpan(original).subspan(0, 80000));
    compressor.PutFrame(ByteSpan(original).subspan(80000));
    const Bytes& stream = compressor.Stream();  // index-less
    MemoryByteSource stream_source{ByteSpan(stream)};
    ParallelStreamDecoder stream_decoder(stream_source,
                                         StreamPoolOptions{2, 0}, Options{});
    EXPECT_FALSE(stream_decoder.UsedIndex());
    Bytes all;
    while (stream_decoder.HasNext()) {
        const Bytes frame = stream_decoder.NextFrame();
        AppendBytes(all, ByteSpan(frame));
    }
    EXPECT_EQ(all, original);

    const Bytes container = Compress(Algorithm::kDPspeed, ByteSpan(original));
    MemoryByteSource container_source{ByteSpan(container)};
    ParallelStreamDecoder container_decoder(
        container_source, StreamPoolOptions{4, 0}, Options{});
    EXPECT_EQ(container_decoder.FrameCount(), 1u);
    EXPECT_EQ(container_decoder.NextFrame(), original);
    EXPECT_FALSE(container_decoder.HasNext());
}

TEST(ParallelDecode, CorruptFrameErrorArrivesAtItsTurn)
{
    const auto values = SmoothValues<float>(30000, 10);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    Bytes stream = MakeIndexedStream(Algorithm::kSPspeed, original, 3);

    MemoryByteSource clean{ByteSpan(stream)};
    const StreamLayout layout = ResolveStreamLayout(clean);
    ASSERT_EQ(layout.frames.size(), 3u);
    // Damage the middle frame's payload (past its header + chunk table).
    const size_t target =
        static_cast<size_t>(layout.frames[1].frame_offset) +
        static_cast<size_t>(layout.frames[1].frame_size) - 5;
    stream[target] ^= std::byte{0x3c};

    MemoryByteSource source{ByteSpan(stream)};
    ParallelStreamDecoder decoder(source, StreamPoolOptions{3, 0},
                                  Options{});
    // Frame 0 still arrives; frame 1 rethrows its typed error; frame 2
    // remains retrievable after it.
    const Bytes frame0 = decoder.NextFrame();
    EXPECT_TRUE(std::equal(frame0.begin(), frame0.end(), original.begin()));
    EXPECT_THROW(decoder.NextFrame(), CorruptStreamError);
    EXPECT_TRUE(decoder.HasNext());
    const Bytes frame2 = decoder.NextFrame();
    EXPECT_EQ(frame2.size(),
              original.size() - 2 * frame0.size() < frame0.size()
                  ? original.size() - 2 * frame0.size()
                  : frame0.size());
    EXPECT_FALSE(decoder.HasNext());
}

TEST(ParallelDecode, EarlyAbandonmentJoinsCleanly)
{
    const auto values = SmoothValues<float>(120000, 14);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    const Bytes stream =
        MakeIndexedStream(Algorithm::kSPspeed, original, 10);
    MemoryByteSource source{ByteSpan(stream)};

    // Abandon after one frame: workers still hold claimed-but-undelivered
    // frames (the tiny in-flight window keeps some parked on space_cv_).
    // The destructor must wake, join, and drain them without hanging.
    {
        ParallelStreamDecoder decoder(source, StreamPoolOptions{4, 2},
                                      Options{});
        const Bytes frame0 = decoder.NextFrame();
        EXPECT_TRUE(
            std::equal(frame0.begin(), frame0.end(), original.begin()));
    }

    // Abandon without consuming anything at all.
    {
        ParallelStreamDecoder decoder(source, StreamPoolOptions{8, 1},
                                      Options{});
        EXPECT_TRUE(decoder.HasNext());
    }

    // Abandon with a pending per-frame decode error: the stored
    // exception_ptr is dropped in the destructor, never rethrown.
    {
        Bytes damaged = stream;
        MemoryByteSource clean{ByteSpan(stream)};
        const StreamLayout layout = ResolveStreamLayout(clean);
        ASSERT_GE(layout.frames.size(), 3u);
        const size_t target =
            static_cast<size_t>(layout.frames[1].frame_offset) +
            static_cast<size_t>(layout.frames[1].frame_size) - 5;
        damaged[target] ^= std::byte{0x3c};
        MemoryByteSource damaged_source{ByteSpan(damaged)};
        ParallelStreamDecoder decoder(damaged_source,
                                      StreamPoolOptions{4, 8}, Options{});
        (void)decoder.NextFrame();  // frame 0 is fine; frame 1's error
    }                               // stays undelivered and is discarded
}

TEST(ParallelDecode, TelemetryAggregatesAcrossWorkers)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "FPC_TELEMETRY=0";
    const auto values = SmoothValues<float>(60000, 11);
    const Bytes original(AsBytes(std::span<const float>(values)).begin(),
                         AsBytes(std::span<const float>(values)).end());
    const Bytes stream =
        MakeIndexedStream(Algorithm::kSPspeed, original, 5);
    MemoryByteSource source{ByteSpan(stream)};

    Telemetry sink;
    Options options = Options{}.with_telemetry(&sink);
    ParallelStreamDecoder decoder(source, StreamPoolOptions{3, 0}, options);
    size_t frames = 0;
    while (decoder.HasNext()) {
        (void)decoder.NextFrame();
        ++frames;
    }
    const TelemetrySnapshot snap = decoder.stats();
    EXPECT_EQ(frames, 5u);
    EXPECT_EQ(snap.decompress.calls, 5u);
    EXPECT_EQ(snap.decompress.output_bytes, original.size());
    // Every chunk of every frame decoded exactly once, counted through
    // the per-worker shards merged at pool join.
    uint64_t chunks = 0;
    for (const SeekIndexEntry& f : ResolveStreamLayout(source).frames) {
        chunks += (f.element_count * sizeof(float) + kChunkSize - 1) /
                  kChunkSize;
    }
    EXPECT_EQ(snap.counters.chunks_decoded, chunks);
    EXPECT_GT(snap.counters.arena_high_water_bytes, 0u);
}

TEST(StreamDecompressorSource, ReadsThroughFdSource)
{
    const auto values = SmoothValues<float>(25000, 12);
    StreamCompressor compressor(Algorithm::kSPratio);
    compressor.PutFloats(std::span<const float>(values.data(), 10000));
    compressor.PutFloats(std::span<const float>(values.data() + 10000,
                                                15000));
    const Bytes& stream = compressor.FinishWithIndex();

    const std::string path =
        ::testing::TempDir() + "/fpc_seek_test_decomp.fpcz";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(stream.data()),
                  static_cast<std::streamsize>(stream.size()));
        ASSERT_TRUE(out.good());
    }
    std::unique_ptr<ByteSource> file =
        OpenByteSource(path, ReadStrategy::kPread);

    // The sequential decompressor stops at the index, not at EOF.
    StreamDecompressor dec{*file, Options{}};
    const std::vector<float> frame0 = dec.NextFloats();
    const std::vector<float> frame1 = dec.NextFloats();
    EXPECT_FALSE(dec.HasNext());
    ASSERT_EQ(frame0.size(), 10000u);
    ASSERT_EQ(frame1.size(), 15000u);
    EXPECT_TRUE(std::equal(
        frame0.begin(), frame0.end(), values.begin(),
        [](float a, float b) {
            return std::memcmp(&a, &b, sizeof(float)) == 0;
        }));

    std::remove(path.c_str());
}

}  // namespace
}  // namespace fpc
