/**
 * @file
 * Live-metrics registry coverage (core/metrics.h): handle identity,
 * counter/gauge/histogram semantics, the Prometheus text exposition
 * (schema marker, one HELP/TYPE per family, no duplicate samples,
 * cumulative `le` buckets, +Inf == _count), snapshot monotonicity, the
 * thread-slot supply (slot reuse past kMetricSlots stays exact), and a
 * writers-vs-scraper hammer for the tsan leg (ctest -L thread).
 *
 * Everything here runs on private MetricsRegistry instances — the
 * global registry is shared process state and other tests in the
 * binary feed it through the instrumented subsystems.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"

namespace {

using namespace fpc;

/** Split an exposition document into its non-comment sample lines. */
std::vector<std::string>
SampleLines(const std::string& exposition)
{
    std::vector<std::string> lines;
    std::istringstream in(exposition);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#') lines.push_back(line);
    }
    return lines;
}

/** Sample identity (name + label block) -> value. Fails the test on a
 *  duplicate identity or an unparseable line. */
std::map<std::string, int64_t>
ParseSamples(const std::string& exposition)
{
    std::map<std::string, int64_t> samples;
    for (const std::string& line : SampleLines(exposition)) {
        const size_t space = line.rfind(' ');
        EXPECT_NE(space, std::string::npos) << line;
        const std::string identity = line.substr(0, space);
        EXPECT_EQ(samples.count(identity), 0u)
            << "duplicate sample: " << identity;
        samples[identity] = std::stoll(line.substr(space + 1));
    }
    return samples;
}

TEST(MetricsRegistry, HandleIdentityIgnoresLabelOrder)
{
    MetricsRegistry registry;
    Counter* a = registry.GetCounter(
        "fpc_test_total", "help", {{"tenant", "t0"}, {"verb", "c"}});
    Counter* b = registry.GetCounter(
        "fpc_test_total", "help", {{"verb", "c"}, {"tenant", "t0"}});
    Counter* other = registry.GetCounter(
        "fpc_test_total", "help", {{"tenant", "t1"}, {"verb", "c"}});
    EXPECT_EQ(a, b);
    EXPECT_NE(a, other);
    // Unlabeled same-name metric is yet another series.
    EXPECT_NE(a, registry.GetCounter("fpc_test_total", "help"));
}

TEST(MetricsRegistry, CounterAccumulates)
{
    MetricsRegistry registry;
    Counter* counter = registry.GetCounter("fpc_c_total", "help");
    EXPECT_EQ(counter->Value(), 0u);
    counter->Inc();
    counter->Inc(41);
    EXPECT_EQ(counter->Value(), 42u);
}

TEST(MetricsRegistry, GaugeGoesNegative)
{
    MetricsRegistry registry;
    Gauge* gauge = registry.GetGauge("fpc_g", "help");
    gauge->Add(5);
    gauge->Sub(8);
    EXPECT_EQ(gauge->Value(), -3);
    gauge->Add(3);
    EXPECT_EQ(gauge->Value(), 0);
}

TEST(MetricsRegistry, HistogramBucketSumsEqualCount)
{
    MetricsRegistry registry;
    Histogram* hist = registry.GetHistogram("fpc_h_ns", "help");
    const uint64_t samples[] = {0, 1, 2, 1000, 1024, 123456, 999999999};
    uint64_t sum = 0;
    for (const uint64_t ns : samples) {
        hist->Record(ns);
        sum += ns;
    }
    EXPECT_EQ(hist->Count(), std::size(samples));
    EXPECT_EQ(hist->SumNs(), sum);
    EXPECT_EQ(hist->MaxNs(), uint64_t{999999999});
    uint64_t bucket_total = 0;
    for (const uint64_t count : hist->BucketCounts()) bucket_total += count;
    EXPECT_EQ(bucket_total, hist->Count());
}

TEST(MetricsRegistry, ExpositionShapeAndHistogramInvariants)
{
    MetricsRegistry registry;
    registry.GetCounter("fpc_req_total", "Requests.", {{"tenant", "a"}})
        ->Inc(3);
    registry.GetCounter("fpc_req_total", "Requests.", {{"tenant", "b"}})
        ->Inc(5);
    registry.GetGauge("fpc_depth", "Queue depth.")->Add(2);
    Histogram* hist = registry.GetHistogram("fpc_lat_ns", "Latency.");
    hist->Record(500);
    hist->Record(5000);
    hist->Record(50000000);

    const std::string exposition = registry.Exposition();
    ASSERT_EQ(exposition.rfind("# fpc.metrics.v1\n", 0), 0u);

    // One HELP and one TYPE line per family, not per labeled series.
    size_t help_lines = 0;
    std::istringstream in(exposition);
    std::string line;
    std::vector<std::string> type_lines;
    while (std::getline(in, line)) {
        if (line.rfind("# HELP fpc_req_total", 0) == 0) ++help_lines;
        if (line.rfind("# TYPE ", 0) == 0) type_lines.push_back(line);
    }
    EXPECT_EQ(help_lines, 1u);
    ASSERT_EQ(type_lines.size(), 3u);

    const std::map<std::string, int64_t> samples =
        ParseSamples(exposition);
    EXPECT_EQ(samples.at("fpc_req_total{tenant=\"a\"}"), 3);
    EXPECT_EQ(samples.at("fpc_req_total{tenant=\"b\"}"), 5);
    EXPECT_EQ(samples.at("fpc_depth"), 2);
    EXPECT_EQ(samples.at("fpc_lat_ns_count"), 3);
    EXPECT_EQ(samples.at("fpc_lat_ns_sum"), 500 + 5000 + 50000000);
    EXPECT_EQ(samples.at("fpc_lat_ns_bucket{le=\"+Inf\"}"),
              samples.at("fpc_lat_ns_count"));

    // Cumulative le buckets are monotone and end at the total count.
    int64_t previous = 0;
    for (const std::string& sample : SampleLines(exposition)) {
        if (sample.rfind("fpc_lat_ns_bucket{le=\"", 0) != 0) continue;
        const int64_t value = samples.at(
            sample.substr(0, sample.rfind(' ')));
        EXPECT_GE(value, previous) << sample;
        previous = value;
    }
    EXPECT_EQ(previous, 3);
}

TEST(MetricsRegistry, CountersMonotoneAcrossSnapshots)
{
    MetricsRegistry registry;
    Counter* counter = registry.GetCounter("fpc_mono_total", "help");
    Histogram* hist = registry.GetHistogram("fpc_mono_ns", "help");

    std::map<std::string, uint64_t> before_counters, after_counters;
    std::map<std::string, int64_t> gauges;
    counter->Inc(7);
    hist->Record(100);
    registry.SnapshotInto(before_counters, gauges);
    counter->Inc(2);
    hist->Record(200);
    registry.SnapshotInto(after_counters, gauges);

    ASSERT_EQ(before_counters.size(), after_counters.size());
    for (const auto& [name, value] : before_counters) {
        ASSERT_TRUE(after_counters.count(name)) << name;
        EXPECT_GE(after_counters.at(name), value) << name;
    }
    EXPECT_EQ(after_counters.at("fpc_mono_total"), 9u);
    EXPECT_EQ(after_counters.at("fpc_mono_ns_count"), 2u);
    EXPECT_EQ(after_counters.at("fpc_mono_ns_sum"), 300u);
}

TEST(MetricsRegistry, SlotReusePastSupplyStaysExact)
{
    MetricsRegistry registry;
    Counter* counter = registry.GetCounter("fpc_slots_total", "help");
    // 3x the slot supply, run *sequentially*: each thread claims a slot,
    // bumps, and releases it at exit. Released slots keep their value,
    // and reusing threads must accumulate, not clobber.
    const size_t threads = 3 * kMetricSlots;
    for (size_t i = 0; i < threads; ++i) {
        std::thread([&] { counter->Inc(10); }).join();
    }
    EXPECT_EQ(counter->Value(), 10 * threads);
}

TEST(MetricsRegistry, OverflowSlotKeepsConcurrentWritersExact)
{
    MetricsRegistry registry;
    Counter* counter = registry.GetCounter("fpc_overflow_total", "help");
    // 2x the slot supply, all alive at once: the late half shares the
    // overflow cell (fetch_add), so the total still comes out exact.
    const size_t threads = 2 * kMetricSlots;
    constexpr uint64_t kPerThread = 5000;
    std::vector<std::thread> pool;
    for (size_t i = 0; i < threads; ++i) {
        pool.emplace_back([&] {
            for (uint64_t n = 0; n < kPerThread; ++n) counter->Inc();
        });
    }
    for (std::thread& thread : pool) thread.join();
    EXPECT_EQ(counter->Value(), kPerThread * threads);
}

/** Writers hammering all three metric kinds while a scraper loops over
 *  Exposition() and SnapshotInto() — the race the tsan leg watches. */
TEST(MetricsRegistry, ConcurrentWritersAndScraper)
{
    MetricsRegistry registry;
    Counter* counter = registry.GetCounter("fpc_hammer_total", "help");
    Gauge* gauge = registry.GetGauge("fpc_hammer_depth", "help");
    Histogram* hist = registry.GetHistogram("fpc_hammer_ns", "help");

    constexpr size_t kWriters = 8;
    constexpr uint64_t kRounds = 2000;
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string exposition = registry.Exposition();
            EXPECT_EQ(exposition.rfind("# fpc.metrics.v1\n", 0), 0u);
            std::map<std::string, uint64_t> counters;
            std::map<std::string, int64_t> gauges;
            registry.SnapshotInto(counters, gauges);
        }
    });
    std::vector<std::thread> writers;
    for (size_t w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (uint64_t n = 0; n < kRounds; ++n) {
                counter->Inc();
                gauge->Add(1);
                hist->Record(n * 37 + w);
                gauge->Sub(1);
            }
        });
    }
    for (std::thread& thread : writers) thread.join();
    stop.store(true);
    scraper.join();

    EXPECT_EQ(counter->Value(), kWriters * kRounds);
    EXPECT_EQ(gauge->Value(), 0);
    EXPECT_EQ(hist->Count(), kWriters * kRounds);
}

TEST(MetricsRegistry, LabelValuesAreEscaped)
{
    MetricsRegistry registry;
    registry
        .GetCounter("fpc_escape_total", "help",
                    {{"path", "a\"b\\c\nd"}})
        ->Inc();
    const std::string exposition = registry.Exposition();
    EXPECT_NE(
        exposition.find("fpc_escape_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
        std::string::npos)
        << exposition;
}

}  // namespace
