/**
 * @file
 * Randomized differential tests: structured random inputs sweep through
 * every algorithm on both device paths, asserting (a) round-trip
 * identity, (b) CPU/GPU-sim byte-identical streams, (c) DecompressInto
 * agreement with Decompress, and (d) bitmap-codec round trips on random
 * bitmaps of awkward sizes. Seeds are fixed, so failures reproduce.
 */
#include <gtest/gtest.h>

#include "core/codec.h"
#include "transforms/bitmap_codec.h"
#include "transforms/transforms.h"
#include "util/bitio.h"
#include "util/hash.h"

namespace fpc {
namespace {

/** Random structured generator: stitches together segments of different
 *  character (constant, ramp, noise, float-like, repeats of earlier
 *  content) to hit many codec paths in one buffer. */
Bytes
StructuredRandom(uint64_t seed)
{
    Rng rng(seed);
    size_t n = 1 + rng.NextBelow(200000);
    Bytes data(n);
    size_t i = 0;
    while (i < n) {
        size_t run = 1 + rng.NextBelow(4096);
        run = std::min(run, n - i);
        switch (rng.NextBelow(6)) {
          case 0: {  // constant bytes
            std::byte v = static_cast<std::byte>(rng.Next() & 0xff);
            for (size_t k = 0; k < run; ++k) data[i + k] = v;
            break;
          }
          case 1: {  // byte ramp
            uint8_t v = static_cast<uint8_t>(rng.Next());
            for (size_t k = 0; k < run; ++k) {
                data[i + k] = static_cast<std::byte>(v++);
            }
            break;
          }
          case 2: {  // pure noise
            for (size_t k = 0; k < run; ++k) {
                data[i + k] = static_cast<std::byte>(rng.Next() & 0xff);
            }
            break;
          }
          case 3: {  // smooth float walk
            float x = static_cast<float>(rng.NextGaussian());
            for (size_t k = 0; k + 4 <= run; k += 4) {
                x += 0.01f * static_cast<float>(rng.NextGaussian());
                std::memcpy(data.data() + i + k, &x, 4);
            }
            break;
          }
          case 4: {  // copy of earlier content
            if (i > 0) {
                size_t src = rng.NextBelow(i);
                for (size_t k = 0; k < run; ++k) {
                    data[i + k] = data[src + k % (i - src)];
                }
            }
            break;
          }
          default:  // leave zeros
            break;
        }
        i += run;
    }
    return data;
}

class FuzzRoundTrip
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

const Algorithm kAll[] = {Algorithm::kSPspeed, Algorithm::kSPratio,
                          Algorithm::kDPspeed, Algorithm::kDPratio};

TEST_P(FuzzRoundTrip, BothDevicesAgreeAndRoundTrip)
{
    auto [algo_idx, seed] = GetParam();
    Algorithm algorithm = kAll[algo_idx];
    Bytes input = StructuredRandom(seed);

    Options cpu;
    Options gpu;
    gpu.with_executor("gpusim:4090");

    Bytes from_cpu = Compress(algorithm, ByteSpan(input), cpu);
    Bytes from_gpu = Compress(algorithm, ByteSpan(input), gpu);
    ASSERT_EQ(from_cpu, from_gpu);

    EXPECT_EQ(Decompress(ByteSpan(from_cpu), gpu), input);
    EXPECT_EQ(Decompress(ByteSpan(from_gpu), cpu), input);

    // DecompressInto must agree with Decompress.
    Bytes into(input.size());
    DecompressInto(ByteSpan(from_cpu), std::span<std::byte>(into), cpu);
    EXPECT_EQ(into, input);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzRoundTrip,
    ::testing::Combine(::testing::Range(size_t{0}, size_t{4}),
                       ::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}, uint64_t{5},
                                         uint64_t{8}, uint64_t{13},
                                         uint64_t{21}, uint64_t{34})),
    [](const auto& info) {
        return std::string(AlgorithmName(kAll[std::get<0>(info.param)])) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(FuzzBitmap, RandomBitmapsRoundTrip)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        size_t n = rng.NextBelow(5000);
        Bytes bitmap(n);
        // Mix of sparse, dense, and run-heavy bitmaps.
        switch (trial % 3) {
          case 0:
            for (auto& b : bitmap) {
                b = static_cast<std::byte>(
                    rng.NextBelow(100) < 5 ? rng.Next() & 0xff : 0);
            }
            break;
          case 1:
            for (auto& b : bitmap) {
                b = static_cast<std::byte>(rng.Next() & 0xff);
            }
            break;
          default: {
            std::byte v{0};
            for (auto& b : bitmap) {
                if (rng.NextBelow(20) == 0) {
                    v = static_cast<std::byte>(rng.Next() & 0xff);
                }
                b = v;
            }
            break;
          }
        }
        Bytes coded;
        tf::CompressBitmap(ByteSpan(bitmap), coded);
        ByteReader br{ByteSpan(coded)};
        Bytes restored = tf::DecompressBitmap(br, bitmap.size());
        ASSERT_EQ(restored, bitmap) << "trial " << trial << " n " << n;
        ASSERT_EQ(br.Remaining(), 0u);
    }
}

TEST(FuzzDecompressInto, RejectsWrongSizes)
{
    Bytes input = StructuredRandom(99);
    Bytes c = Compress(Algorithm::kSPspeed, ByteSpan(input));
    Bytes small(input.size() - 1);
    EXPECT_THROW(DecompressInto(ByteSpan(c), std::span<std::byte>(small)),
                 UsageError);
    Bytes big(input.size() + 1);
    EXPECT_THROW(DecompressInto(ByteSpan(c), std::span<std::byte>(big)),
                 UsageError);
}

// Byte offset of the uint32 chunk_count field in the container header
// (magic u32, version u8, algorithm u8, reserved u16, original u64,
// transformed u64, checksum u64 precede it — see WriteContainerPrefix).
constexpr size_t kChunkCountOffset = 32;

TEST(FuzzContainer, RejectsInconsistentChunkCount)
{
    Bytes input = StructuredRandom(42);
    Bytes c = Compress(Algorithm::kSPspeed, ByteSpan(input));
    uint32_t count = 0;
    std::memcpy(&count, c.data() + kChunkCountOffset, sizeof(count));
    ASSERT_GT(count, 0u);

    // chunk_count must match ceil(transformed_size / kChunkSize); any
    // other value — one off either way, zero, or wildly oversized (which
    // would otherwise drive huge table allocations) — is corruption.
    for (uint32_t patched :
         {count - 1, count + 1, uint32_t{0}, count + 1000000u,
          uint32_t{0x7fffffff}}) {
        Bytes bad = c;
        std::memcpy(bad.data() + kChunkCountOffset, &patched,
                    sizeof(patched));
        EXPECT_THROW(Decompress(ByteSpan(bad)), CorruptStreamError)
            << "patched chunk_count " << patched;
        EXPECT_THROW(Inspect(ByteSpan(bad)), CorruptStreamError)
            << "patched chunk_count " << patched;
    }
}

TEST(FuzzContainer, RejectsTruncation)
{
    // Large enough for several chunks so truncation points land inside
    // the header, inside the chunk table, and inside the payload.
    Bytes input = StructuredRandom(34);
    ASSERT_GT(input.size(), 2 * kChunkSize);
    Bytes c = Compress(Algorithm::kSPratio, ByteSpan(input));

    uint32_t count = 0;
    std::memcpy(&count, c.data() + kChunkCountOffset, sizeof(count));
    const size_t table_end = kChunkCountOffset + 4 + count * 4;
    const size_t cuts[] = {0, 1, kChunkCountOffset,
                           kChunkCountOffset + 4 + 2,  // mid chunk table
                           table_end - 1, table_end, c.size() - 1};
    for (size_t cut : cuts) {
        ASSERT_LT(cut, c.size());
        Bytes bad(c.begin(), c.begin() + static_cast<ptrdiff_t>(cut));
        EXPECT_THROW(Decompress(ByteSpan(bad)), CorruptStreamError)
            << "truncated to " << cut << " bytes";
    }
}

/**
 * Per-transform decoder fuzzing: encode a valid input, then hit the coded
 * bytes with an exhaustive mutation + truncation sweep and decode on an
 * arena whose decode budget matches what the chunk pipeline would set. A
 * stage decoder has no checksum, so a mutant may decode "successfully" to
 * wrong bytes — the container layer catches that — but it must never
 * crash, hang, or throw anything except CorruptStreamError, and must
 * respect the budget.
 */
void
SweepTransformDecoder(const char* name,
                      void (*encode)(ByteSpan, Bytes&, ScratchArena&),
                      void (*decode)(ByteSpan, Bytes&, ScratchArena&),
                      ByteSpan input)
{
    ScratchArena scratch;
    Bytes coded;
    encode(input, coded, scratch);

    ScratchArena decode_scratch;
    decode_scratch.SetDecodeBudget(input.size() + kChunkDecodeSlack);
    const auto attempt = [&](ByteSpan damaged, size_t pos, int mutant) {
        Bytes out;
        try {
            decode(damaged, out, decode_scratch);
        } catch (const CorruptStreamError&) {
            return;  // the expected rejection
        }
        // Tolerated: decoded without error. The budget bounds the output.
        EXPECT_LE(out.size(), input.size() + kChunkDecodeSlack)
            << name << " mutant " << mutant << " at byte " << pos
            << " exceeded the decode budget";
    };

    Bytes damaged = coded;
    for (size_t pos = 0; pos < damaged.size(); ++pos) {
        const auto orig = static_cast<uint8_t>(damaged[pos]);
        for (uint8_t mutant : {static_cast<uint8_t>(orig ^ 0x01),
                               static_cast<uint8_t>(0x00),
                               static_cast<uint8_t>(0xff)}) {
            if (mutant == orig) continue;
            damaged[pos] = static_cast<std::byte>(mutant);
            attempt(ByteSpan(damaged), pos, mutant);
        }
        damaged[pos] = static_cast<std::byte>(orig);
    }
    for (size_t len = 0; len < coded.size(); ++len) {
        attempt(ByteSpan(coded.data(), len), len, -1);
    }
}

TEST(FuzzTransformDecoders, RareRazeFcmSurviveMutationSweep)
{
    // Word-structured data with zero runs and repeats: all three adaptive
    // paths (zero elimination, repetition elimination, context matches)
    // are exercised, so the mutants hit populated bitmaps and survivors.
    Rng rng(1234);
    std::vector<uint64_t> words(700);
    uint64_t prev = 0;
    for (auto& w : words) {
        switch (rng.NextBelow(4)) {
          case 0: w = 0; break;
          case 1: w = prev; break;
          case 2: w = rng.Next() & 0xffff; break;
          default: w = rng.Next(); break;
        }
        prev = w;
    }
    Bytes input(AsBytes(words).begin(), AsBytes(words).end());
    input.push_back(std::byte{0x7e});  // odd tail byte

    SweepTransformDecoder("RARE64", tf::RareEncode64, tf::RareDecode64,
                          ByteSpan(input));
    SweepTransformDecoder("RAZE64", tf::RazeEncode64, tf::RazeDecode64,
                          ByteSpan(input));
    SweepTransformDecoder("FCM", tf::FcmEncode, tf::FcmDecode,
                          ByteSpan(input));
}

TEST(FuzzBitmapCodec, DecoderSurvivesMutationSweep)
{
    // Sparse bitmap: several recursion levels with non-trivial kept sets.
    Rng rng(99);
    Bytes bitmap(2048);
    for (auto& b : bitmap) {
        b = static_cast<std::byte>(rng.NextBelow(50) == 0 ? 0xff : 0);
    }
    Bytes coded;
    tf::CompressBitmap(ByteSpan(bitmap), coded);

    const auto attempt = [&](ByteSpan damaged) {
        ByteReader br{damaged};
        try {
            Bytes out = tf::DecompressBitmap(br, bitmap.size());
            EXPECT_EQ(out.size(), bitmap.size());
        } catch (const CorruptStreamError&) {
            // expected for most mutants
        }
    };

    Bytes damaged = coded;
    for (size_t pos = 0; pos < damaged.size(); ++pos) {
        const auto orig = static_cast<uint8_t>(damaged[pos]);
        for (uint8_t mutant : {static_cast<uint8_t>(orig ^ 0x01),
                               static_cast<uint8_t>(0x00),
                               static_cast<uint8_t>(0xff)}) {
            if (mutant == orig) continue;
            damaged[pos] = static_cast<std::byte>(mutant);
            attempt(ByteSpan(damaged));
        }
        damaged[pos] = static_cast<std::byte>(orig);
    }
    for (size_t len = 0; len < coded.size(); ++len) {
        attempt(ByteSpan(coded.data(), len));
    }
}

TEST(FuzzChecksum, DistinctInputsDistinctChecksums)
{
    // Smoke-check the checksum: different structured inputs essentially
    // never collide.
    Rng rng(5);
    std::vector<uint64_t> seen;
    for (int i = 0; i < 200; ++i) {
        Bytes data = StructuredRandom(1000 + i);
        seen.push_back(Checksum64(ByteSpan(data)));
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace fpc
