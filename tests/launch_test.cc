/**
 * @file
 * Tests for the device-launch compression path (gpusim/launch.h): the
 * grid-scheduled, decoupled-look-back pipeline must produce container
 * bytes identical to fpc::Compress on both device profiles, and the
 * BitArena used by the kernels must match BitWriter/BitReader layout
 * exactly, including the fast/slow path boundary of BitReader.
 */
#include <gtest/gtest.h>

#include "core/codec.h"
#include "data/fields.h"
#include "gpusim/bit_arena.h"
#include "gpusim/launch.h"
#include "util/bitio.h"
#include "util/hash.h"

namespace fpc::gpusim {
namespace {

TEST(Launch, ContainerIdenticalToHostCompress)
{
    auto doubles = data::QuantizedObservations(60000, 5, 0.001);
    Bytes input(doubles.size() * 8);
    std::memcpy(input.data(), doubles.data(), input.size());

    for (const DeviceProfile* profile :
         {&Rtx4090Profile(), &A100Profile()}) {
        Device device(*profile);
        for (Algorithm a : {Algorithm::kSPspeed, Algorithm::kSPratio,
                            Algorithm::kDPspeed, Algorithm::kDPratio}) {
            Bytes host = Compress(a, ByteSpan(input));
            Bytes dev = CompressOnDevice(device, a, ByteSpan(input));
            ASSERT_EQ(host, dev)
                << AlgorithmName(a) << " on " << profile->name;
            EXPECT_EQ(DecompressOnDevice(device, ByteSpan(dev)), input);
        }
    }
}

TEST(Launch, ManyChunksExerciseLookback)
{
    // Enough chunks that resident-block scheduling and look-back matter.
    auto floats =
        data::ToFloats(data::SmoothField(1 << 20, 6, 5, 0.001));
    Bytes input(floats.size() * 4);
    std::memcpy(input.data(), floats.data(), input.size());

    Device device(Rtx4090Profile());
    Bytes dev = CompressOnDevice(device, Algorithm::kSPspeed,
                                 ByteSpan(input));
    EXPECT_EQ(device.BlocksExecuted(), input.size() / kChunkSize);
    EXPECT_EQ(dev, Compress(Algorithm::kSPspeed, ByteSpan(input)));
    EXPECT_EQ(Decompress(ByteSpan(dev)), input);
}

TEST(BitArena, MatchesBitWriterLayout)
{
    Rng rng(9);
    std::vector<std::pair<uint64_t, unsigned>> fields;
    size_t total_bits = 0;
    for (int i = 0; i < 5000; ++i) {
        unsigned width = static_cast<unsigned>(rng.NextBelow(65));
        uint64_t value = rng.Next();
        if (width < 64) value &= (uint64_t{1} << width) - 1;
        fields.emplace_back(value, width);
        total_bits += width;
    }

    Bytes via_writer;
    BitWriter bw(via_writer);
    for (auto [value, width] : fields) bw.Put(value, width);
    bw.Finish();

    BitArena arena(total_bits);
    size_t pos = 0;
    for (auto [value, width] : fields) {
        arena.SetBits(pos, value, width);
        pos += width;
    }
    Bytes via_arena;
    arena.AppendTo(via_arena);
    EXPECT_EQ(via_arena, via_writer);

    // And reads agree with BitReader on the same stream.
    BitArena loaded = BitArena::FromBytes(ByteSpan(via_writer), total_bits);
    BitReader br{ByteSpan(via_writer)};
    pos = 0;
    for (auto [value, width] : fields) {
        ASSERT_EQ(br.Get(width), value);
        ASSERT_EQ(loaded.GetBits(pos, width), value);
        pos += width;
    }
}

TEST(BitArena, BoundsChecked)
{
    BitArena arena(10);
    arena.SetBits(3, 0x7f, 7);
    EXPECT_EQ(arena.GetBits(3, 7), 0x7fu);
    EXPECT_THROW(BitArena::FromBytes(ByteSpan(), 9), CorruptStreamError);
}

TEST(BitReader, FastAndSlowPathsAgree)
{
    // Fields straddling the last 16 bytes take the byte-loop path; the
    // values must match what the word-load fast path produced earlier.
    Rng rng(10);
    for (size_t n : {size_t{17}, size_t{24}, size_t{33}, size_t{100}}) {
        Bytes buf(n);
        for (auto& b : buf) b = static_cast<std::byte>(rng.Next() & 0xff);
        // Two readers, one pass each with different field splits, must
        // extract identical total content.
        BitReader a{ByteSpan(buf)};
        BitReader b{ByteSpan(buf)};
        uint64_t bits_a_lo = a.Get(64);
        uint64_t got = 0;
        uint64_t bits_b_lo = 0;
        for (unsigned i = 0; i < 8; ++i) {
            bits_b_lo |= b.Get(8) << got;
            got += 8;
        }
        EXPECT_EQ(bits_a_lo, bits_b_lo) << n;
        // Remaining bits, read as 3-bit fields from both readers.
        size_t remaining = n * 8 - 64;
        while (remaining >= 3) {
            ASSERT_EQ(a.Get(3), b.Get(3));
            remaining -= 3;
        }
    }
}

}  // namespace
}  // namespace fpc::gpusim
