/**
 * @file
 * Round-trip tests for every Table 1 baseline compressor over a grid of
 * input distributions and sizes, plus targeted behaviour checks (FPC
 * predictor benefit, GFC lag, leveled codecs).
 */
#include <gtest/gtest.h>

#include <cctype>

#include "baselines/compressor.h"
#include "data/fields.h"
#include "util/hash.h"

namespace fpc::baselines {
namespace {

Bytes
MakeInput(const std::string& kind, size_t n, uint64_t seed)
{
    Rng rng(seed);
    Bytes data(n, std::byte{0});
    if (kind == "random") {
        for (auto& b : data) b = static_cast<std::byte>(rng.Next() & 0xff);
    } else if (kind == "smooth32") {
        auto v = data::ToFloats(data::SmoothField(n / 4, seed, 5, 0.001));
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 4);
    } else if (kind == "smooth64") {
        auto v = data::SmoothField(n / 8, seed, 5, 1e-8);
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 8);
    } else if (kind == "runs") {
        size_t i = 0;
        while (i < n) {
            std::byte v = static_cast<std::byte>(rng.Next() & 0xff);
            size_t run = 1 + rng.NextBelow(100);
            for (size_t k = 0; k < run && i < n; ++k) data[i++] = v;
        }
    }  // zeros: default
    return data;
}

class BaselineRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<size_t, std::string, size_t>> {};

TEST_P(BaselineRoundTrip, Identity)
{
    auto [codec_idx, kind, size] = GetParam();
    const BaselineCodec& codec = Registry()[codec_idx];
    Bytes input = MakeInput(kind, size, 1000 + size);

    Bytes compressed = codec.compress(ByteSpan(input));
    Bytes output = codec.decompress(ByteSpan(compressed));
    ASSERT_EQ(output.size(), input.size()) << codec.name;
    EXPECT_EQ(output, input) << codec.name;
}

std::string
BaselineTestName(
    const ::testing::TestParamInfo<std::tuple<size_t, std::string, size_t>>&
        info)
{
    std::string name = Registry()[std::get<0>(info.param)].name + "_" +
                       std::get<1>(info.param) + "_" +
                       std::to_string(std::get<2>(info.param));
    for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineRoundTrip,
    ::testing::Combine(::testing::Range(size_t{0}, Registry().size()),
                       ::testing::Values("zeros", "random", "smooth32",
                                         "smooth64", "runs"),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{13},
                                         size_t{4096}, size_t{100003})),
    BaselineTestName);

TEST(Registry, HasAllPaperFamilies)
{
    // Table 1 lists 18 compressors; with level/word-size variants the
    // registry is larger, but each family must be present.
    const char* required[] = {"Ndzip",  "ANS",   "Bitcomp-i0", "Cascaded",
                              "Deflate", "Gdeflate", "GFC",   "LZ4",
                              "MPC",     "Snappy",   "Bzip2", "FPC",
                              "FPzip",   "Gzip-1",   "pFPC",  "SPDP-1",
                              "ZFP",     "ZSTD-fast", "ZSTD-best",
                              "GPU-ZSTD"};
    for (const char* name : required) {
        EXPECT_NO_THROW(Lookup(name)) << name;
    }
    EXPECT_THROW(Lookup("nonexistent"), UsageError);
    EXPECT_GE(Registry().size(), 18u);
}

TEST(Fpc, PredictsSmoothDoubles)
{
    Bytes input = MakeInput("smooth64", 1 << 18, 42);
    Bytes c = FpcCompress(ByteSpan(input), 16);
    EXPECT_LT(c.size(), input.size() * 3 / 4);
    // Larger tables never hurt correctness.
    for (unsigned bits : {4u, 10u, 20u}) {
        Bytes cb = FpcCompress(ByteSpan(input), bits);
        EXPECT_EQ(FpcDecompress(ByteSpan(cb)), input);
    }
}

TEST(Fpc, ParallelVersionMatchesSerialSemantics)
{
    Bytes input = MakeInput("smooth64", 300000, 43);
    Bytes serial = FpcCompress(ByteSpan(input), 12);
    Bytes parallel = PfpcCompress(ByteSpan(input), 12);
    EXPECT_EQ(FpcDecompress(ByteSpan(serial)), input);
    EXPECT_EQ(PfpcDecompress(ByteSpan(parallel)), input);
}

TEST(Gfc, CompressesSmoothDoubles)
{
    Bytes input = MakeInput("smooth64", 1 << 18, 44);
    Bytes c = GfcCompress(ByteSpan(input));
    EXPECT_LT(c.size(), input.size());
    EXPECT_EQ(GfcDecompress(ByteSpan(c)), input);
}

TEST(Leveled, HigherLevelsCompressAtLeastAsWellOnText)
{
    // Repetitive data: deeper match finding cannot do worse by much.
    Bytes input = MakeInput("runs", 1 << 17, 45);
    Bytes fast = ZstdxCompress(ByteSpan(input), 1);
    Bytes best = ZstdxCompress(ByteSpan(input), 19);
    EXPECT_LE(best.size(), fast.size() + input.size() / 50);
    EXPECT_EQ(ZstdxDecompress(ByteSpan(fast)), input);
    EXPECT_EQ(ZstdxDecompress(ByteSpan(best)), input);
}

TEST(Fpzip, HighRatioOnSmoothData)
{
    Bytes input = MakeInput("smooth32", 1 << 17, 46);
    Bytes c = FpzipxCompress(ByteSpan(input), 4);
    double ratio =
        static_cast<double>(input.size()) / static_cast<double>(c.size());
    EXPECT_GT(ratio, 1.5);
    EXPECT_EQ(FpzipxDecompress(ByteSpan(c)), input);
}

TEST(Baselines, WordSizeVariantsRoundTripDoubles)
{
    Bytes input = MakeInput("smooth64", 1 << 16, 47);
    EXPECT_EQ(MpcDecompress(ByteSpan(MpcCompress(ByteSpan(input), 8))),
              input);
    EXPECT_EQ(NdzDecompress(ByteSpan(NdzCompress(ByteSpan(input), 8))),
              input);
    EXPECT_EQ(ZfpxDecompress(ByteSpan(ZfpxCompress(ByteSpan(input), 8))),
              input);
    EXPECT_EQ(
        FpzipxDecompress(ByteSpan(FpzipxCompress(ByteSpan(input), 8))),
        input);
    EXPECT_EQ(
        BitcompDecompress(ByteSpan(BitcompCompress(ByteSpan(input), 8,
                                                   true))),
        input);
}

}  // namespace
}  // namespace fpc::baselines
