/**
 * @file
 * Tests for the synthetic dataset suites and the evaluation harness:
 * determinism, suite layout (7 SP + 5 DP domains mirroring the paper's
 * 90/20 file split), property sanity of the generated data, and the
 * harness's aggregation and verification behaviour.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "data/datasets.h"
#include "data/fields.h"
#include "eval/harness.h"
#include "eval/report.h"

namespace fpc {
namespace {

TEST(Datasets, SingleSuiteLayoutMatchesPaper)
{
    data::SuiteConfig config;
    config.values_per_file = 1024;
    config.file_scale = 1.0;
    auto files = data::SingleSuite(config);
    EXPECT_EQ(files.size(), 90u);  // paper Section 4: 90 SP files

    std::set<std::string> domains;
    for (const auto& f : files) {
        domains.insert(f.domain);
        EXPECT_EQ(f.values.size(), 1024u);
    }
    EXPECT_EQ(domains.size(), 7u);  // 7 scientific domains
}

TEST(Datasets, DoubleSuiteLayoutMatchesPaper)
{
    data::SuiteConfig config;
    config.values_per_file = 1024;
    auto files = data::DoubleSuite(config);
    EXPECT_EQ(files.size(), 20u);  // paper Section 4: 20 DP files

    std::set<std::string> domains;
    for (const auto& f : files) domains.insert(f.domain);
    EXPECT_EQ(domains.size(), 5u);  // 5 domains
}

TEST(Datasets, Deterministic)
{
    data::SuiteConfig config;
    config.values_per_file = 256;
    config.file_scale = 0.1;
    auto a = data::SingleSuite(config);
    auto b = data::SingleSuite(config);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].values, b[i].values);
    }
}

TEST(Fields, SmoothFieldsHaveSmallDifferences)
{
    auto field = data::SmoothField(10000, 1, 5, 0.0001);
    double max_abs = 0, max_diff = 0;
    for (size_t i = 0; i < field.size(); ++i) {
        max_abs = std::max(max_abs, std::fabs(field[i]));
        if (i > 0) {
            max_diff = std::max(max_diff, std::fabs(field[i] - field[i - 1]));
        }
    }
    EXPECT_GT(max_abs, 0.1);
    EXPECT_LT(max_diff, max_abs * 0.05);  // consecutive values are close
}

TEST(Fields, QuantizedObservationsRepeatValues)
{
    auto obs = data::QuantizedObservations(10000, 2, 1.0 / 64.0);
    std::set<double> distinct(obs.begin(), obs.end());
    EXPECT_LT(distinct.size(), obs.size() / 10);  // heavy value reuse
}

TEST(Fields, ParticleCoordinatesMonotoneTrend)
{
    auto coords = data::ParticleCoordinates(1000, 3, 100.0, 0.1);
    // Jitter is small relative to spacing: long-range trend is increasing.
    EXPECT_LT(coords.front(), coords.back());
}

TEST(Harness, EvaluatesAndAggregates)
{
    data::SuiteConfig config;
    config.values_per_file = 4096;
    config.file_scale = 0.08;  // small but >= 1 file per domain
    auto files = data::SingleSuite(config);
    auto inputs = eval::ToInputs(files);

    eval::EvalConfig eval_config;
    eval_config.runs = 1;
    auto codec = eval::OurCodec(Algorithm::kSPratio, "cpu");
    eval::CodecResult result = eval::Evaluate(codec, inputs, eval_config);

    EXPECT_EQ(result.name, "SPratio");
    EXPECT_EQ(result.files.size(), files.size());
    EXPECT_GT(result.ratio, 1.0);
    EXPECT_GT(result.compress_gbps, 0.0);
    EXPECT_GT(result.decompress_gbps, 0.0);
}

TEST(Harness, GeoMeanOfGeoMeansNotSkewedByFileCounts)
{
    // Construct two domains: one with 4 identical easy files, one with a
    // single hard file. The aggregate ratio must be the geometric mean of
    // the two domain means, not of the 5 files.
    auto easy = data::ToFloats(data::SmoothField(4096, 7, 4, 1e-5));
    std::vector<data::SpFile> files;
    for (int i = 0; i < 4; ++i) {
        files.push_back({"easy", "e" + std::to_string(i), easy});
    }
    Rng rng(8);
    std::vector<float> hard(4096);
    for (auto& v : hard) {
        v = BitCastTo<float>(static_cast<uint32_t>(rng.Next()));
    }
    files.push_back({"hard", "h0", hard});

    auto inputs = eval::ToInputs(files);
    eval::EvalConfig config;
    config.runs = 1;
    auto result = eval::Evaluate(
        eval::OurCodec(Algorithm::kSPspeed, "cpu"), inputs, config);

    double easy_ratio = result.files[0].ratio;
    double hard_ratio = result.files[4].ratio;
    EXPECT_NEAR(result.ratio, std::sqrt(easy_ratio * hard_ratio), 1e-9);
}

TEST(Report, ScatterAndCsv)
{
    std::vector<eval::CodecResult> results(2);
    results[0].name = "A";
    results[0].ratio = 2.0;
    results[0].compress_gbps = 10.0;
    results[0].decompress_gbps = 20.0;
    results[1].name = "B";
    results[1].ratio = 1.5;
    results[1].compress_gbps = 30.0;
    results[1].decompress_gbps = 5.0;

    auto comp = eval::ToScatter(results, eval::Axis::kCompression);
    EXPECT_DOUBLE_EQ(comp[0].throughput, 10.0);
    auto decomp = eval::ToScatter(results, eval::Axis::kDecompression);
    EXPECT_DOUBLE_EQ(decomp[1].throughput, 5.0);

    std::ostringstream os;
    eval::PrintFigure(os, "test figure", results,
                      eval::Axis::kCompression);
    std::string text = os.str();
    EXPECT_NE(text.find("test figure"), std::string::npos);
    EXPECT_NE(text.find("Pareto front: B A"), std::string::npos);
}

TEST(Report, StageCsvHeaderPinned)
{
    // The column order is a published contract (downstream plot scripts
    // index by it); spell it out so a reorder fails here, not in a
    // notebook. Extend by appending only.
    EXPECT_STREQ(eval::kStageCsvHeader,
                 "compressor,stage,direction,calls,wall_ns,input_bytes,"
                 "output_bytes,p50_ns,p95_ns,p99_ns,max_ns");

    data::SuiteConfig config;
    config.values_per_file = 4096;
    config.file_scale = 0.08;
    auto inputs = eval::ToInputs(data::SingleSuite(config));
    eval::EvalConfig eval_config;
    eval_config.runs = 1;
    auto result = eval::Evaluate(
        eval::OurCodec(Algorithm::kSPratio, "cpu"), inputs,
        eval_config);

    const std::string path =
        testing::TempDir() + "/stage_csv_header_test.csv";
    eval::WriteStageCsv(path, {result});
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, eval::kStageCsvHeader);

    // Every data row has exactly the header's column count, and in
    // instrumented builds the instrumented codec produces rows.
    const size_t columns =
        1 + static_cast<size_t>(
            std::count(header.begin(), header.end(), ','));
    size_t rows = 0;
    std::string row;
    while (std::getline(in, row)) {
        if (row.empty()) continue;
        ++rows;
        EXPECT_EQ(1 + static_cast<size_t>(
                      std::count(row.begin(), row.end(), ',')),
                  columns)
            << row;
    }
    if (kTelemetryEnabled) {
        EXPECT_GT(rows, 0u);
    } else {
        EXPECT_EQ(rows, 0u);
    }
}

}  // namespace
}  // namespace fpc
