/**
 * @file
 * Compressed output must be a pure function of (algorithm, input): the
 * same bytes regardless of thread count or device path (DESIGN.md §3:
 * "Both devices must produce identical compressed bytes"). The parallel
 * two-pass container assembly makes this non-trivial — chunk payloads are
 * encoded into per-thread arenas in nondeterministic order and only the
 * prefix-summed placement restores a canonical layout — so this test
 * pins it down for every algorithm, plus golden checksums that detect
 * any accidental format change.
 */
#include <gtest/gtest.h>

#include "core/codec.h"
#include "util/hash.h"

namespace fpc {
namespace {

/**
 * Deterministic smooth low-entropy stream typical of scientific fields:
 * a random walk over 32-bit words with small steps (LCG-driven), plus an
 * LCG byte tail when the size is not word-aligned.
 */
Bytes
MakeInput(size_t n_bytes, uint64_t seed)
{
    Bytes data(n_bytes);
    uint64_t state = seed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= n_bytes; i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    for (size_t i = n_bytes & ~size_t{3}; i < n_bytes; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = static_cast<std::byte>(state >> 56);
    }
    return data;
}

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

TEST(DeterminismTest, ThreadCountAndDeviceDoNotChangeOutput)
{
    for (size_t size : {size_t{1} << 20, (size_t{1} << 18) + 13}) {
        const Bytes input = MakeInput(size, 0x5eed + size);
        for (Algorithm algorithm : kAlgorithms) {
            Options one;
            one.threads = 1;
            const Bytes reference = Compress(algorithm, ByteSpan(input), one);

            Options four;
            four.threads = 4;
            const Bytes parallel =
                Compress(algorithm, ByteSpan(input), four);
            EXPECT_EQ(reference, parallel)
                << "threads=4 changed the compressed bytes (alg "
                << static_cast<int>(algorithm) << ", size " << size << ")";

            Options gpu;
            gpu.device = Device::kGpuSim;
            const Bytes on_device = Compress(algorithm, ByteSpan(input), gpu);
            EXPECT_EQ(reference, on_device)
                << "gpusim changed the compressed bytes (alg "
                << static_cast<int>(algorithm) << ", size " << size << ")";

            // Cross-device round trip: CPU-compressed decodes on the
            // device path and vice versa.
            EXPECT_EQ(input, Decompress(ByteSpan(reference), gpu));
            EXPECT_EQ(input, Decompress(ByteSpan(on_device), four));
        }
    }
}

/**
 * Golden sizes and checksums of the compressed streams. These pin the
 * wire format: any change here is a breaking format change and must be
 * deliberate (bump the container version), not a side effect of a
 * performance change.
 */
TEST(DeterminismTest, GoldenCompressedChecksums)
{
    struct Golden {
        size_t size;
        Algorithm algorithm;
        size_t compressed_bytes;
        uint64_t checksum;
    };
    const Golden kGolden[] = {
        {size_t{1} << 20, Algorithm::kSPspeed, 352288,
         0x8164796542bb988bull},
        {size_t{1} << 20, Algorithm::kSPratio, 339156,
         0x526deebca63acd9bull},
        {size_t{1} << 20, Algorithm::kDPspeed, 718032,
         0x82032e9934e4fad5ull},
        {size_t{1} << 20, Algorithm::kDPratio, 709370,
         0x69a8a775ae901fbcull},
        {(size_t{1} << 18) + 13, Algorithm::kSPspeed, 88117,
         0x6f130cb3aec62125ull},
        {(size_t{1} << 18) + 13, Algorithm::kSPratio, 84488,
         0x5b4e8bd20eba4a96ull},
        {(size_t{1} << 18) + 13, Algorithm::kDPspeed, 179552,
         0xe451776ff8bb5f24ull},
        {(size_t{1} << 18) + 13, Algorithm::kDPratio, 177416,
         0x28355c9472bc8f68ull},
    };

    Options options;
    options.threads = 1;
    for (const Golden& g : kGolden) {
        const Bytes input = MakeInput(g.size, 0x5eed + g.size);
        const Bytes compressed =
            Compress(g.algorithm, ByteSpan(input), options);
        EXPECT_EQ(compressed.size(), g.compressed_bytes)
            << "alg " << static_cast<int>(g.algorithm) << ", size "
            << g.size;
        EXPECT_EQ(Checksum64(ByteSpan(compressed)), g.checksum)
            << "alg " << static_cast<int>(g.algorithm) << ", size "
            << g.size;
    }
}

}  // namespace
}  // namespace fpc
