/**
 * @file
 * Compressed output must be a pure function of (algorithm, input): the
 * same bytes regardless of thread count or device path (DESIGN.md §3:
 * "Both devices must produce identical compressed bytes"). The parallel
 * two-pass container assembly makes this non-trivial — chunk payloads are
 * encoded into per-thread arenas in nondeterministic order and only the
 * prefix-summed placement restores a canonical layout — so this test
 * pins it down for every algorithm. Golden wire-format checksums live in
 * tests/executor_test.cc, asserted per registered backend.
 */
#include <gtest/gtest.h>

#include "core/codec.h"

namespace fpc {
namespace {

/**
 * Deterministic smooth low-entropy stream typical of scientific fields:
 * a random walk over 32-bit words with small steps (LCG-driven), plus an
 * LCG byte tail when the size is not word-aligned.
 */
Bytes
MakeInput(size_t n_bytes, uint64_t seed)
{
    Bytes data(n_bytes);
    uint64_t state = seed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= n_bytes; i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    for (size_t i = n_bytes & ~size_t{3}; i < n_bytes; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = static_cast<std::byte>(state >> 56);
    }
    return data;
}

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

TEST(DeterminismTest, ThreadCountAndDeviceDoNotChangeOutput)
{
    for (size_t size : {size_t{1} << 20, (size_t{1} << 18) + 13}) {
        const Bytes input = MakeInput(size, 0x5eed + size);
        for (Algorithm algorithm : kAlgorithms) {
            Options one;
            one.threads = 1;
            const Bytes reference = Compress(algorithm, ByteSpan(input), one);

            Options four;
            four.threads = 4;
            const Bytes parallel =
                Compress(algorithm, ByteSpan(input), four);
            EXPECT_EQ(reference, parallel)
                << "threads=4 changed the compressed bytes (alg "
                << static_cast<int>(algorithm) << ", size " << size << ")";

            Options gpu;
            gpu.with_executor("gpusim:4090");
            const Bytes on_device = Compress(algorithm, ByteSpan(input), gpu);
            EXPECT_EQ(reference, on_device)
                << "gpusim changed the compressed bytes (alg "
                << static_cast<int>(algorithm) << ", size " << size << ")";

            // Cross-device round trip: CPU-compressed decodes on the
            // device path and vice versa.
            EXPECT_EQ(input, Decompress(ByteSpan(reference), gpu));
            EXPECT_EQ(input, Decompress(ByteSpan(on_device), four));
        }
    }
}

}  // namespace
}  // namespace fpc
