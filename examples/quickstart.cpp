/**
 * @file
 * Quickstart: compress and decompress a float array with the one-shot
 * API, in both modes, and inspect the result.
 *
 *   $ ./quickstart
 */
#include <cstdio>
#include <vector>

#include "core/codec.h"

int
main()
{
    // Some smooth scientific-looking data: a decaying oscillation.
    std::vector<float> field(1 << 20);
    for (size_t i = 0; i < field.size(); ++i) {
        float x = static_cast<float>(i) / 4096.0f;
        field[i] = std::exp(-x / 64.0f) * std::sin(x);
    }

    // kSpeed selects SPspeed (throughput-first); kRatio selects SPratio.
    for (fpc::Mode mode : {fpc::Mode::kSpeed, fpc::Mode::kRatio}) {
        fpc::Bytes compressed = fpc::CompressFloats(field, mode);
        fpc::CompressedInfo info = fpc::Inspect(compressed);

        std::printf("%s: %zu bytes -> %zu bytes (ratio %.2f, %u chunks, "
                    "%u stored raw)\n",
                    fpc::AlgorithmName(info.algorithm),
                    field.size() * sizeof(float), compressed.size(),
                    info.ratio, info.chunk_count, info.raw_chunks);

        // Decompression recovers the input bit-for-bit.
        std::vector<float> restored = fpc::DecompressFloats(compressed);
        if (std::memcmp(restored.data(), field.data(),
                        field.size() * sizeof(float)) != 0) {
            std::fprintf(stderr, "round-trip mismatch!\n");
            return 1;
        }
    }
    std::printf("round-trips verified bit-for-bit\n");
    return 0;
}
