/**
 * @file
 * Quickstart: compress and decompress a float array with the typed
 * fpc::Codec facade, in both modes, inspect the result, and read the
 * built-in per-stage telemetry.
 *
 *   $ ./quickstart
 */
#include <cstdio>
#include <vector>

#include "core/codec.h"
#include "core/telemetry.h"

int
main()
{
    // Some smooth scientific-looking data: a decaying oscillation.
    std::vector<float> field(1 << 20);
    for (size_t i = 0; i < field.size(); ++i) {
        float x = static_cast<float>(i) / 4096.0f;
        field[i] = std::exp(-x / 64.0f) * std::sin(x);
    }

    // kSpeed selects SPspeed (throughput-first); kRatio selects SPratio.
    // (For<double> would pick the DP algorithms the same way.)
    for (fpc::Mode mode : {fpc::Mode::kSpeed, fpc::Mode::kRatio}) {
        fpc::Codec codec = fpc::Codec::For<float>(mode);
        fpc::Telemetry& stats = codec.enable_telemetry();

        fpc::Bytes compressed = codec.compress(std::span<const float>(field));
        fpc::CompressedInfo info = fpc::Codec::inspect(compressed);

        std::printf("%s: %zu bytes -> %zu bytes (ratio %.2f, %u chunks, "
                    "%u stored raw)\n", info.algorithm_name.c_str(),
                    field.size() * sizeof(float), compressed.size(),
                    info.ratio, info.chunk_count, info.raw_chunks);

        // Decompression recovers the input bit-for-bit.
        std::vector<float> restored = codec.decompress_as<float>(compressed);
        if (std::memcmp(restored.data(), field.data(),
                        field.size() * sizeof(float)) != 0) {
            std::fprintf(stderr, "round-trip mismatch!\n");
            return 1;
        }

        // Per-stage metrics for the round trip, one JSON line
        // (schema fpc.telemetry.v1 — see DESIGN.md "Observability").
        std::printf("%s\n", stats.ToJson().c_str());
    }
    std::printf("round-trips verified bit-for-bit\n");
    return 0;
}
