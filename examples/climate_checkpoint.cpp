/**
 * @file
 * Climate-checkpoint scenario (the paper's motivating I/O-bound use
 * case): a simulation periodically writes multi-variable 2D atmosphere
 * state. Each variable is compressed independently with SPratio — the
 * checkpoint is written once and read many times, so ratio matters more
 * than encode speed — and the example reports per-variable and total
 * ratios plus effective write throughput.
 *
 *   $ ./climate_checkpoint
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/codec.h"
#include "data/fields.h"
#include "util/timer.h"

namespace {

struct Variable {
    std::string name;
    std::vector<float> grid;
};

}  // namespace

int
main()
{
    // A CESM-ATM-like checkpoint: several 1024x512 single-precision
    // variables with different smoothness characteristics.
    const size_t nx = 1024, ny = 512;
    std::vector<Variable> checkpoint;
    const char* names[] = {"TS", "PS", "Q", "U", "V", "CLDLOW"};
    for (size_t v = 0; v < std::size(names); ++v) {
        double noise = v < 3 ? 0.001 : 0.01;  // winds are rougher
        checkpoint.push_back(
            {names[v], fpc::data::ToFloats(fpc::data::SmoothField2d(
                           nx, ny, 1000 + v, noise))});
    }

    // One codec for the whole checkpoint: the checkpoint is written once
    // and read many times, so ratio matters more than encode speed.
    fpc::Codec codec = fpc::Codec::For<float>(fpc::Mode::kRatio);

    size_t total_in = 0, total_out = 0;
    double total_seconds = 0;
    std::printf("%-8s %12s %12s %8s\n", "variable", "bytes in", "bytes out",
                "ratio");
    for (const Variable& variable : checkpoint) {
        fpc::Timer timer;
        fpc::Bytes compressed =
            codec.compress(std::span<const float>(variable.grid));
        total_seconds += timer.Seconds();

        size_t in_bytes = variable.grid.size() * sizeof(float);
        std::printf("%-8s %12zu %12zu %8.2f\n", variable.name.c_str(),
                    in_bytes, compressed.size(),
                    static_cast<double>(in_bytes) /
                        static_cast<double>(compressed.size()));
        total_in += in_bytes;
        total_out += compressed.size();

        // Verify the checkpoint is readable and exact.
        std::vector<float> restored = codec.decompress_as<float>(compressed);
        if (std::memcmp(restored.data(), variable.grid.data(),
                        in_bytes) != 0) {
            std::fprintf(stderr, "checkpoint corruption for %s!\n",
                         variable.name.c_str());
            return 1;
        }
    }
    std::printf("\ncheckpoint: %zu -> %zu bytes (ratio %.2f), compressed "
                "at %.2f GB/s\n",
                total_in, total_out,
                static_cast<double>(total_in) /
                    static_cast<double>(total_out),
                total_in / 1e9 / total_seconds);
    std::printf("a storage budget of X bytes now holds %.1fx as many "
                "checkpoints\n",
                static_cast<double>(total_in) /
                    static_cast<double>(total_out));
    return 0;
}
