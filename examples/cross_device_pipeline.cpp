/**
 * @file
 * Cross-device pipeline (the paper's compatibility claim in action):
 * scientific data is often compressed where it is produced and
 * decompressed where it is analysed. Here a "GPU node" compresses a
 * double-precision dataset on the GPU execution path and a "CPU analysis
 * node" decompresses it on the CPU path — and vice versa — with
 * byte-identical streams either way. Backends are selected by name
 * through the executor registry (core/executor.h).
 *
 *   $ ./cross_device_pipeline
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/codec.h"
#include "core/executor.h"
#include "data/fields.h"

int
main()
{
    // Quantized sensor observations: lots of exactly repeated values,
    // which DPratio's FCM stage turns into short back-references.
    std::vector<double> observations =
        fpc::data::QuantizedObservations(1 << 20, 99, 1.0 / 4096.0);
    fpc::ByteSpan input = fpc::AsBytes(observations);

    // --- producer: GPU node (simulated device, paper Section 3) ---
    fpc::Options gpu_options = fpc::Options{}.with_executor("gpusim:4090");
    fpc::Bytes from_gpu =
        fpc::Compress(fpc::Algorithm::kDPratio, input, gpu_options);

    // --- producer: CPU node (OpenMP path, the default executor) ---
    fpc::Bytes from_cpu = fpc::Compress(fpc::Algorithm::kDPratio, input);

    std::printf("GPU-path stream: %zu bytes; CPU-path stream: %zu bytes\n",
                from_gpu.size(), from_cpu.size());
    if (from_gpu != from_cpu) {
        std::fprintf(stderr,
                     "streams differ: cross-device compatibility broken\n");
        return 1;
    }
    std::printf("streams are byte-identical (ratio %.2f)\n",
                static_cast<double>(input.size()) /
                    static_cast<double>(from_gpu.size()));

    // --- consumers: decompress each stream on the *other* device ---
    fpc::Options cpu_options;  // default backend: "cpu"
    fpc::Bytes on_cpu = fpc::Decompress(fpc::ByteSpan(from_gpu), cpu_options);

    fpc::Bytes on_gpu =
        fpc::Decompress(fpc::ByteSpan(from_cpu), gpu_options);

    bool ok = on_cpu.size() == input.size() && on_gpu.size() == input.size() &&
              std::memcmp(on_cpu.data(), input.data(), input.size()) == 0 &&
              std::memcmp(on_gpu.data(), input.data(), input.size()) == 0;
    if (!ok) {
        std::fprintf(stderr, "cross-device round trip failed\n");
        return 1;
    }
    std::printf("GPU-compressed data decompressed on the CPU, and "
                "CPU-compressed data\ndecompressed on the GPU path — both "
                "bit-exact\n");
    return 0;
}
