/**
 * @file
 * Molecular-dynamics trajectory streaming (an EXAALT-like workload): a
 * producer emits double-precision coordinate frames every few timesteps;
 * the streaming API compresses each frame with DPspeed so the stream can
 * keep up with a fast interconnect, and a consumer decodes frames in
 * order. Demonstrates StreamCompressor/StreamDecompressor and frame
 * independence.
 *
 *   $ ./md_trajectory_stream
 */
#include <cstdio>
#include <vector>

#include "core/stream.h"
#include "core/telemetry.h"
#include "data/fields.h"
#include "util/hash.h"
#include "util/timer.h"

int
main()
{
    const size_t n_atoms = 100000;
    const int n_frames = 20;

    // Initial particle positions: sorted with thermal jitter.
    std::vector<double> positions =
        fpc::data::ParticleCoordinates(n_atoms, 42, 250.0, 0.2);

    fpc::StreamCompressor stream(fpc::Algorithm::kDPspeed);
    stream.stats();  // attach the telemetry sink before the first frame
    std::vector<std::vector<double>> truth;

    fpc::Rng rng(7);
    fpc::Timer timer;
    for (int frame = 0; frame < n_frames; ++frame) {
        // Integrate: small thermal displacements each step.
        for (double& x : positions) x += 0.01 * rng.NextGaussian();
        truth.push_back(positions);
        stream.PutDoubles(positions);
    }
    double encode_seconds = timer.Seconds();

    double in_gb = static_cast<double>(stream.BytesIn()) / 1e9;
    std::printf("streamed %d frames, %zu atoms each: %.1f MB -> %.1f MB "
                "(ratio %.2f) at %.2f GB/s\n",
                n_frames, n_atoms, stream.BytesIn() / 1e6,
                stream.Stream().size() / 1e6,
                static_cast<double>(stream.BytesIn()) /
                    static_cast<double>(stream.Stream().size()),
                in_gb / encode_seconds);

    // Consumer side: frames decode in order, each independently.
    fpc::StreamDecompressor reader{fpc::ByteSpan(stream.Stream())};
    int frame = 0;
    while (reader.HasNext()) {
        std::vector<double> decoded = reader.NextDoubles();
        if (decoded != truth[frame]) {
            std::fprintf(stderr, "frame %d mismatch!\n", frame);
            return 1;
        }
        ++frame;
    }
    std::printf("consumer verified all %d frames bit-for-bit\n", frame);

    // Producer-side per-stage metrics accumulated across all frames
    // (schema fpc.telemetry.v1 — see DESIGN.md "Observability").
    std::printf("%s\n", fpc::ToJson(stream.stats()).c_str());
    return 0;
}
