/**
 * @file
 * fpcc — client for the fpcd compression daemon: sends one request over
 * the unix-domain socket (framed protocol, service/protocol.h) and maps
 * the reply's wire status byte straight to its exit code — the same
 * fpc::Errc table fpczip uses (core/errc.h), so scripts never parse
 * error text.
 *
 * Usage:
 *   fpcc --socket=PATH compress   [-a ALGO] [--mode=auto|fixed]
 *        [--backend=NAME] [--tenant=ID] IN OUT
 *   fpcc --socket=PATH decompress [--backend=NAME] [--tenant=ID] IN OUT
 *   fpcc --socket=PATH range --range=FIRST:COUNT [--backend=NAME]
 *        [--tenant=ID] IN OUT
 *   fpcc --socket=PATH inspect IN           one JSON line of metadata
 *   fpcc --socket=PATH stats                daemon telemetry JSON
 *        ("fpc.telemetry.v6", incl. the per-tenant "service" block and
 *        the "metrics_snapshot" mirror of the live registry)
 *   fpcc --socket=PATH metrics              Prometheus text exposition
 *        of the daemon's live metrics (fpc.metrics.v1)
 *   fpcc --socket=PATH health               daemon health JSON (status,
 *        uptime, queue depth, open connections)
 *   fpcc --socket=PATH server_stats         transport counters JSON
 *   fpcc --socket=PATH shutdown             ask the daemon to exit
 *
 * --tenant names the QoS bucket the daemon accounts the request to
 * (default "default"). --request-id=ID tags the request in the
 * daemon's log and trace (alnum plus `-_.`, at most 64 bytes; the
 * daemon mints `srv-<n>` when absent). When the daemon rejects for
 * backpressure the exit code is 4 (busy) — retry after a backoff.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/errc.h"
#include "service/client.h"

namespace {

fpc::Bytes
ReadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw fpc::UsageError("cannot open " + path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    fpc::Bytes data(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(data.data()), size);
    if (!in) throw fpc::UsageError("cannot read " + path);
    return data;
}

void
WriteFile(const std::string& path, const fpc::Bytes& data)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) throw fpc::UsageError("cannot open " + path);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) throw fpc::UsageError("cannot write " + path);
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage: fpcc --socket=PATH VERB [options] [IN [OUT]]\n"
        "VERB:  compress [-a ALGO] [--mode=auto|fixed] [--backend=NAME]\n"
        "           [--tenant=ID] IN OUT\n"
        "       decompress [--backend=NAME] [--tenant=ID] IN OUT\n"
        "       range --range=FIRST:COUNT [--backend=NAME] [--tenant=ID]\n"
        "           IN OUT\n"
        "       inspect IN          print container metadata JSON\n"
        "       stats               print daemon telemetry JSON\n"
        "       metrics             print Prometheus text exposition\n"
        "       health              print daemon health JSON\n"
        "       server_stats        print transport counters JSON\n"
        "       shutdown            ask the daemon to exit\n"
        "Every verb accepts --request-id=ID (tags the daemon's request\n"
        "log and trace; alnum plus -_. only).\n"
        "ALGO:  SPspeed (default) | SPratio | DPspeed | DPratio\n"
        "Exit codes (fpc::Errc): 0 ok, 1 internal, 2 usage, 3 corrupt,\n"
        "4 busy (backpressure: retry later)\n");
    return fpc::ExitCodeOf(fpc::Errc::kUsage);
}

void
ParseRange(const std::string& text, uint64_t& first, uint64_t& count)
{
    const size_t colon = text.find(':');
    try {
        if (colon == std::string::npos) throw std::invalid_argument(text);
        size_t pos = 0;
        first = std::stoull(text.substr(0, colon), &pos);
        if (pos != colon) throw std::invalid_argument(text);
        const std::string rest = text.substr(colon + 1);
        count = std::stoull(rest, &pos);
        if (pos != rest.size()) throw std::invalid_argument(text);
    } catch (const std::exception&) {
        throw fpc::UsageError("--range expects FIRST:COUNT, got " + text);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        std::string socket_path;
        fpc::ServiceRequest request;
        bool have_verb = false;
        bool have_range = false;
        std::vector<std::string> files;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--socket=", 0) == 0) {
                socket_path = arg.substr(std::strlen("--socket="));
            } else if (arg.rfind("--tenant=", 0) == 0) {
                request.tenant = arg.substr(std::strlen("--tenant="));
                if (request.tenant.empty()) return Usage();
            } else if (arg.rfind("--backend=", 0) == 0) {
                request.executor = arg.substr(std::strlen("--backend="));
            } else if (arg.rfind("--request-id=", 0) == 0) {
                request.request_id =
                    arg.substr(std::strlen("--request-id="));
                if (request.request_id.empty()) return Usage();
            } else if (arg.rfind("--mode=", 0) == 0) {
                const std::string mode = arg.substr(std::strlen("--mode="));
                if (mode == "auto") request.adaptive = true;
                else if (mode == "fixed") request.adaptive = false;
                else throw fpc::UsageError("unknown mode: " + mode);
            } else if (arg.rfind("--range=", 0) == 0) {
                have_range = true;
                ParseRange(arg.substr(std::strlen("--range=")),
                           request.range_first, request.range_count);
            } else if (arg == "-a" && i + 1 < argc) {
                request.algorithm = fpc::ParseAlgorithm(argv[++i]);
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else if (!have_verb) {
                // "range" is the CLI spelling of decompress_range.
                request.verb = arg == "range"
                                   ? fpc::ServiceVerb::kDecompressRange
                                   : fpc::ParseServiceVerb(arg);
                have_verb = true;
            } else {
                files.push_back(arg);
            }
        }
        if (socket_path.empty() || !have_verb) return Usage();

        size_t expected_files = 2;
        switch (request.verb) {
            case fpc::ServiceVerb::kInspect:
                expected_files = 1;
                break;
            case fpc::ServiceVerb::kStats:
            case fpc::ServiceVerb::kShutdown:
            case fpc::ServiceVerb::kMetrics:
            case fpc::ServiceVerb::kHealth:
            case fpc::ServiceVerb::kServerStats:
                expected_files = 0;
                break;
            case fpc::ServiceVerb::kDecompressRange:
                if (!have_range) {
                    throw fpc::UsageError("range requires --range");
                }
                break;
            default:
                break;
        }
        if (files.size() != expected_files) return Usage();
        if (!files.empty()) request.payload = ReadFile(files[0]);

        fpc::SocketClient client(socket_path);
        const fpc::ServiceResponse response = client.Call(request);
        if (response.status != fpc::Errc::kOk) {
            std::fprintf(stderr, "fpcc: %s: %s\n",
                         fpc::ErrcName(response.status),
                         response.error.c_str());
            return fpc::ExitCodeOf(response.status);
        }
        if (files.size() == 2) {
            WriteFile(files[1], response.payload);
        } else if (!response.payload.empty()) {
            // inspect/stats/health/server_stats: one JSON line for
            // stdout; metrics: multi-line text already newline-ended.
            std::fwrite(response.payload.data(), 1, response.payload.size(),
                        stdout);
            if (static_cast<char>(response.payload.back()) != '\n') {
                std::fputc('\n', stdout);
            }
        }
        return fpc::ExitCodeOf(fpc::Errc::kOk);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fpcc: %s\n", e.what());
        return fpc::ExitCodeOf(fpc::CurrentErrc());
    }
}
