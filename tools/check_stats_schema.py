#!/usr/bin/env python3
"""Validate the observability JSON documents the library emits.

Reads stdin (or the files named on the command line) line by line and
validates every JSON object whose schema tag it recognises:

``fpc.telemetry.v6`` (``Telemetry::ToJson``, src/core/telemetry.cc):
  - top-level keys: schema, executor, algorithm, isa, compress,
    decompress, ranged, chunks, adaptive, mplg, arena, service,
    metrics_snapshot, histograms, stages;
  - metrics_snapshot: the live-metrics mirror — "counters" (exposition
    sample name -> non-negative integer) and "gauges" (name -> integer,
    may be negative);
  - isa names the dispatched kernel level (scalar/avx2/avx512);
  - compress/decompress: calls, input_bytes, output_bytes, wall_ns — all
    non-negative integers;
  - ranged (random-access decode totals): calls, elements,
    frames_decoded, chunks_decoded, chunks_skipped, io_reads, io_bytes,
    index_hits — non-negative integers with index_hits <= calls;
  - chunks: encoded, raw_fallback, decoded with raw_fallback <= encoded;
  - adaptive (mode=auto selection; all-zero for fixed runs): chunks
    (per-algorithm winner counts), raw_chunks, probe_calls, probe_ns,
    trials, predicted_bytes, actual_bytes, with selected chunks (winner
    counts + raw) <= probe_calls and trials <= 3 * probe_calls (every
    in-margin candidate may be trial-encoded);
  - mplg: subchunks, enhanced_subchunks with enhanced <= subchunks;
  - arena: high_water_bytes;
  - service (the fpc::Service per-tenant block; empty tenants map for
    library-only runs): each tenant has requests, rejected, failed,
    bytes_in, bytes_out, queue_ns counters (failed <= requests) plus a
    "request" whole-request latency digest whose count == requests;
  - histograms: chunk_encode and chunk_decode latency digests (count,
    p50_ns, p95_ns, p99_ns, max_ns with p50 <= p95 <= p99 <= max), with
    chunks.encoded == chunk_encode.count + adaptive.trials (each margin
    trial is an extra encode attempt outside the executor chunk span);
  - stages: exactly the seven stages, in StageId order, each with an
    encode and a decode counter block plus a latency digest pair whose
    counts match the stage call counters.

``fpc.trace.v1`` (``TraceSink::ToChromeJson``, src/core/trace.cc):
  - top-level schema, dropped (non-negative), traceEvents array;
  - every event is Chrome trace-event shaped: ph "M" (metadata) or "X"
    (complete span with numeric ts/dur >= 0, name, pid, tid).

``fpc.bench.v1`` (bench/bench_regress.cc, bench/bench_seek.cc, and
bench/bench_service.cc):
  - config block carrying the corpus/stream fingerprint and machine
    facts (corpus-shaped reports name values_per_file and the scales,
    seek-shaped reports name frames/values_per_frame/queries,
    service-shaped reports name tenants/requests_per_tenant/
    values_per_request/workers);
  - results entries with algorithm, backend, positive ratio and
    throughputs, and valid latency digests (chunk_encode/chunk_decode
    required for corpus-shaped reports, range_read for ranged ones,
    request for service-shaped ones).

``fpc.metrics.v1`` (``MetricsRegistry::Exposition``, src/core/metrics.cc;
the daemon's /metrics and ``fpcc metrics`` output):
  - a ``# fpc.metrics.v1`` marker line followed by Prometheus
    text-format comment and sample lines (consumed until a blank or
    JSON line);
  - HELP/TYPE at most once per family, every sample typed, no
    duplicate sample identities (name + label set);
  - counter and histogram samples non-negative (gauges may go
    negative);
  - histogram series: cumulative ``le`` buckets monotone, bounds
    ascending, and the ``+Inf`` bucket equal to ``_count``.

Exit code 0 when every recognised line validates and at least one was
seen (pass ``--allow-empty`` when hooks are compiled out and
context/counter content is not expected), 1 otherwise. Wired into ctest
as the ``stats_schema`` test (tests/stats_schema.cmake); also ad hoc:

    fpczip -c -a DPratio --stats in.bin out.fpcz 2>&1 | \\
        python3 tools/check_stats_schema.py
"""

import json
import re
import sys

TELEMETRY_TAG = "fpc.telemetry.v6"
TRACE_TAG = "fpc.trace.v1"
BENCH_TAG = "fpc.bench.v1"
METRICS_TAG = "fpc.metrics.v1"

STAGE_ORDER = ["DIFFMS", "MPLG", "BIT", "RZE", "FCM", "RAZE", "RARE"]

COUNTER_FIELDS = ["calls", "input_bytes", "output_bytes", "wall_ns"]

DIGEST_FIELDS = ["count", "p50_ns", "p95_ns", "p99_ns", "max_ns"]

TOP_KEYS = [
    "schema",
    "executor",
    "algorithm",
    "isa",
    "compress",
    "decompress",
    "ranged",
    "chunks",
    "adaptive",
    "mplg",
    "arena",
    "service",
    "metrics_snapshot",
    "histograms",
    "stages",
]

TENANT_FIELDS = [
    "requests",
    "rejected",
    "failed",
    "bytes_in",
    "bytes_out",
    "queue_ns",
]

RANGED_FIELDS = [
    "calls",
    "elements",
    "frames_decoded",
    "chunks_decoded",
    "chunks_skipped",
    "io_reads",
    "io_bytes",
    "index_hits",
]

ALGORITHMS = ["SPspeed", "SPratio", "DPspeed", "DPratio"]

# Valid bench-entry algorithm labels: the four pipelines plus the
# per-chunk adaptive mode (one entry per element width).
BENCH_ALGORITHMS = ALGORITHMS + ["auto", "auto-SP", "auto-DP"]

ADAPTIVE_FIELDS = [
    "raw_chunks",
    "probe_calls",
    "probe_ns",
    "trials",
    "predicted_bytes",
    "actual_bytes",
]

ISA_LEVELS = ["scalar", "avx2", "avx512"]


def fail(line_no, message):
    print(f"check_stats_schema: line {line_no}: {message}", file=sys.stderr)
    return False


def check_counters(line_no, where, block):
    if not isinstance(block, dict):
        return fail(line_no, f"{where} is not an object")
    ok = True
    for field in COUNTER_FIELDS:
        value = block.get(field)
        if not isinstance(value, int) or value < 0:
            ok = fail(line_no, f"{where}.{field} missing or not a"
                               f" non-negative integer: {value!r}")
    return ok


def check_digest(line_no, where, block):
    """A latency-histogram digest: counts plus ordered quantiles."""
    if not isinstance(block, dict):
        return fail(line_no, f"{where} is not an object")
    ok = True
    for field in DIGEST_FIELDS:
        value = block.get(field)
        if not isinstance(value, int) or value < 0:
            ok = fail(line_no, f"{where}.{field} missing or not a"
                               f" non-negative integer: {value!r}")
    if ok and not (block["p50_ns"] <= block["p95_ns"] <= block["p99_ns"]
                   <= block["max_ns"]):
        ok = fail(line_no, f"{where} quantiles are not ordered:"
                           f" {block!r}")
    if ok and block["count"] == 0 and block["max_ns"] != 0:
        ok = fail(line_no, f"{where} is empty but max_ns != 0")
    return ok


def check_telemetry(line_no, doc):
    ok = True
    for key in TOP_KEYS:
        if key not in doc:
            ok = fail(line_no, f"missing top-level key {key!r}")
    if not ok:
        return False
    extra = set(doc) - set(TOP_KEYS)
    if extra:
        ok = fail(line_no, f"unknown top-level keys {sorted(extra)}"
                           " (bump the schema tag instead)")

    for direction in ("compress", "decompress"):
        ok = check_counters(line_no, direction, doc[direction]) and ok

    ranged = doc["ranged"]
    if not isinstance(ranged, dict):
        ok = fail(line_no, "ranged is not an object")
    else:
        for field in RANGED_FIELDS:
            value = ranged.get(field)
            if not isinstance(value, int) or value < 0:
                ok = fail(line_no, f"ranged.{field} missing or not a"
                                   f" non-negative integer: {value!r}")
        if ok and ranged["index_hits"] > ranged["calls"]:
            ok = fail(line_no, "ranged.index_hits exceeds ranged.calls")
        if ok and ranged["calls"] == 0 and ranged["chunks_decoded"] != 0:
            ok = fail(line_no, "ranged.chunks_decoded nonzero without any"
                               " ranged.calls")

    chunks = doc["chunks"]
    for field in ("encoded", "raw_fallback", "decoded"):
        if not isinstance(chunks.get(field), int) or chunks[field] < 0:
            ok = fail(line_no, f"chunks.{field} missing or invalid")
    if ok and chunks["raw_fallback"] > chunks["encoded"]:
        ok = fail(line_no, "chunks.raw_fallback exceeds chunks.encoded")

    adaptive = doc["adaptive"]
    if not isinstance(adaptive, dict):
        ok = fail(line_no, "adaptive is not an object")
    else:
        for field in ADAPTIVE_FIELDS:
            value = adaptive.get(field)
            if not isinstance(value, int) or value < 0:
                ok = fail(line_no, f"adaptive.{field} missing or not a"
                                   f" non-negative integer: {value!r}")
        winners = adaptive.get("chunks")
        if not isinstance(winners, dict) \
                or sorted(winners) != sorted(ALGORITHMS):
            ok = fail(line_no, "adaptive.chunks must map exactly the four"
                               f" algorithms, got {winners!r}")
        elif ok:
            for name, value in winners.items():
                if not isinstance(value, int) or value < 0:
                    ok = fail(line_no, f"adaptive.chunks.{name} invalid:"
                                       f" {value!r}")
            if ok:
                selected = (sum(winners.values())
                            + adaptive["raw_chunks"])
                if selected > adaptive["probe_calls"]:
                    ok = fail(line_no, "adaptive selections exceed"
                                       " adaptive.probe_calls")
                if adaptive["trials"] > 3 * adaptive["probe_calls"]:
                    ok = fail(line_no, "adaptive.trials exceeds 3x"
                                       " adaptive.probe_calls")

    mplg = doc["mplg"]
    for field in ("subchunks", "enhanced_subchunks"):
        if not isinstance(mplg.get(field), int) or mplg[field] < 0:
            ok = fail(line_no, f"mplg.{field} missing or invalid")
    if ok and mplg["enhanced_subchunks"] > mplg["subchunks"]:
        ok = fail(line_no, "mplg.enhanced_subchunks exceeds subchunks")

    arena = doc["arena"]
    if not isinstance(arena.get("high_water_bytes"), int):
        ok = fail(line_no, "arena.high_water_bytes missing or invalid")

    service = doc["service"]
    tenants = service.get("tenants") if isinstance(service, dict) else None
    if not isinstance(tenants, dict):
        ok = fail(line_no, "service.tenants missing or not an object")
    else:
        for name, tenant in tenants.items():
            where = f"service.tenants[{name!r}]"
            if not isinstance(tenant, dict):
                ok = fail(line_no, f"{where} is not an object")
                continue
            for field in TENANT_FIELDS:
                value = tenant.get(field)
                if not isinstance(value, int) or value < 0:
                    ok = fail(line_no, f"{where}.{field} missing or not a"
                                       f" non-negative integer: {value!r}")
            digest = tenant.get("request")
            if not isinstance(digest, dict):
                ok = fail(line_no, f"{where} lacks a request digest")
                continue
            ok = check_digest(line_no, f"{where}.request", digest) and ok
            if ok and tenant["failed"] > tenant["requests"]:
                ok = fail(line_no, f"{where}.failed exceeds requests")
            if ok and digest["count"] != tenant["requests"]:
                ok = fail(line_no, f"{where}.request.count !="
                                   f" {where}.requests")

    snapshot = doc["metrics_snapshot"]
    if not isinstance(snapshot, dict) \
            or sorted(snapshot) != ["counters", "gauges"]:
        ok = fail(line_no, "metrics_snapshot must hold exactly"
                           f" counters + gauges, got {snapshot!r}")
    else:
        for name, value in snapshot["counters"].items():
            if not isinstance(value, int) or value < 0:
                ok = fail(line_no, f"metrics_snapshot.counters[{name!r}]"
                                   f" not a non-negative integer:"
                                   f" {value!r}")
        for name, value in snapshot["gauges"].items():
            if not isinstance(value, int):
                ok = fail(line_no, f"metrics_snapshot.gauges[{name!r}]"
                                   f" not an integer: {value!r}")

    hists = doc["histograms"]
    if not isinstance(hists, dict):
        ok = fail(line_no, "histograms is not an object")
    else:
        for key in ("chunk_encode", "chunk_decode"):
            if key not in hists:
                ok = fail(line_no, f"histograms lacks {key}")
            else:
                ok = check_digest(line_no, f"histograms.{key}",
                                  hists[key]) and ok
        if ok:
            # chunks.encoded counts encode *attempts*: every adaptive
            # margin trial adds one, while the chunk-encode latency
            # histogram records only the per-chunk executor spans.
            trials = doc["adaptive"]["trials"] \
                if isinstance(doc.get("adaptive"), dict) \
                and isinstance(doc["adaptive"].get("trials"), int) else 0
            expected = hists["chunk_encode"]["count"] + trials
            if chunks["encoded"] != expected:
                ok = fail(line_no, "chunks.encoded"
                                   f" ({chunks['encoded']}) !="
                                   " histograms.chunk_encode.count +"
                                   f" adaptive.trials ({expected})")

    stages = doc["stages"]
    if not isinstance(stages, list):
        return fail(line_no, "stages is not an array")
    names = [s.get("stage") for s in stages if isinstance(s, dict)]
    if names != STAGE_ORDER:
        ok = fail(line_no, f"stage array is {names}, expected fixed order"
                           f" {STAGE_ORDER}")
    for stage in stages:
        if not isinstance(stage, dict):
            ok = fail(line_no, "stage entry is not an object")
            continue
        label = f"stages[{stage.get('stage')!r}]"
        for direction in ("encode", "decode"):
            if direction not in stage:
                ok = fail(line_no, f"{label} lacks a {direction} block")
            else:
                ok = check_counters(line_no, f"{label}.{direction}",
                                    stage[direction]) and ok
        latency = stage.get("latency")
        if not isinstance(latency, dict):
            ok = fail(line_no, f"{label} lacks a latency block")
            continue
        for direction in ("encode", "decode"):
            if direction not in latency:
                ok = fail(line_no,
                          f"{label}.latency lacks {direction}")
                continue
            ok = check_digest(line_no, f"{label}.latency.{direction}",
                              latency[direction]) and ok
            if (ok and direction in stage
                    and latency[direction]["count"]
                    != stage[direction]["calls"]):
                ok = fail(line_no,
                          f"{label}.latency.{direction}.count !="
                          f" {label}.{direction}.calls")
    return ok


def check_telemetry_content(line_no, doc):
    """Extra checks for builds with hooks compiled in: an instrumented
    compress run must have filled in its context and counters."""
    ok = True
    if not doc["executor"]:
        ok = fail(line_no, "executor is empty (no SetContext call?)")
    if not doc["algorithm"]:
        ok = fail(line_no, "algorithm is empty")
    if doc["isa"] not in ISA_LEVELS:
        ok = fail(line_no, f"isa is {doc['isa']!r}, expected one of"
                           f" {ISA_LEVELS}")
    if (doc["compress"]["calls"] + doc["decompress"]["calls"]
            + doc["ranged"]["calls"] == 0):
        ok = fail(line_no, "no compress, decompress, or ranged call ran"
                           " in an instrumented run")
    if doc["chunks"]["encoded"] + doc["chunks"]["decoded"] == 0:
        ok = fail(line_no, "no chunks processed in an instrumented run")
    sum_of_stages = sum(s["encode"]["calls"] + s["decode"]["calls"]
                        for s in doc["stages"])
    coded = doc["chunks"]["encoded"] - doc["chunks"]["raw_fallback"]
    if sum_of_stages == 0 and coded > 0:
        # Decode-only runs of all-raw containers legitimately run no
        # stages; a compress run with coded chunks must have.
        ok = fail(line_no, "every stage counter is 0 for an instrumented"
                           " run with coded chunks")
    hist_counts = (doc["histograms"]["chunk_encode"]["count"]
                   + doc["histograms"]["chunk_decode"]["count"])
    if hist_counts == 0:
        ok = fail(line_no, "chunk latency histograms are empty for an"
                           " instrumented run")
    return ok


def check_trace(line_no, doc):
    ok = True
    dropped = doc.get("dropped")
    if not isinstance(dropped, int) or dropped < 0:
        ok = fail(line_no, f"dropped missing or invalid: {dropped!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(line_no, "traceEvents missing or not an array")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            ok = fail(line_no, f"{where} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "X"):
            ok = fail(line_no, f"{where}.ph is {ph!r}, expected M or X")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                ok = fail(line_no, f"{where} lacks {field}")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    ok = fail(line_no, f"{where}.{field} missing or"
                                       f" negative: {value!r}")
    return ok


def check_trace_content(line_no, doc):
    """An instrumented trace must contain at least one complete span."""
    spans = [e for e in doc["traceEvents"]
             if isinstance(e, dict) and e.get("ph") == "X"]
    if not spans:
        return fail(line_no, "trace has no complete (ph=X) spans for an"
                             " instrumented run")
    return True


def check_bench(line_no, doc):
    ok = True
    config = doc.get("config")
    # bench_regress reports carry the corpus knobs, bench_seek reports
    # the stream/query knobs, bench_service reports the tenant-load
    # knobs. All share the fingerprint and the machine facts.
    corpus_shaped = isinstance(config, dict) and "values_per_file" in config
    service_shaped = isinstance(config, dict) and "tenants" in config
    if not isinstance(config, dict):
        ok = fail(line_no, "config missing or not an object")
    else:
        if corpus_shaped:
            int_fields = ("values_per_file", "runs", "repeats", "threads")
        elif service_shaped:
            int_fields = ("tenants", "requests_per_tenant",
                          "values_per_request", "workers", "window",
                          "threads")
        else:
            int_fields = ("frames", "values_per_frame", "queries",
                          "range_elements", "repeats", "threads")
        for field in int_fields:
            value = config.get(field)
            if not isinstance(value, int) or value <= 0:
                ok = fail(line_no, f"config.{field} missing or invalid:"
                                   f" {value!r}")
        if corpus_shaped:
            for field in ("sp_scale", "dp_scale"):
                value = config.get(field)
                if not isinstance(value, (int, float)) or value <= 0:
                    ok = fail(line_no, f"config.{field} missing or"
                                       f" invalid: {value!r}")
        if not isinstance(config.get("fingerprint"), str) \
                or not config["fingerprint"]:
            ok = fail(line_no, "config.fingerprint missing or empty")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return fail(line_no, "results missing, not an array, or empty")
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(entry, dict):
            ok = fail(line_no, f"{where} is not an object")
            continue
        if entry.get("algorithm") not in BENCH_ALGORITHMS:
            ok = fail(line_no, f"{where}.algorithm is"
                               f" {entry.get('algorithm')!r}")
        if not isinstance(entry.get("backend"), str) \
                or not entry["backend"]:
            ok = fail(line_no, f"{where}.backend missing or empty")
        for field in ("ratio", "compress_gbps", "decompress_gbps"):
            value = entry.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                ok = fail(line_no, f"{where}.{field} missing or not"
                                   f" positive: {value!r}")
        hists = entry.get("histograms")
        if not isinstance(hists, dict):
            ok = fail(line_no, f"{where}.histograms missing")
            continue
        if corpus_shaped:
            for key in ("chunk_encode", "chunk_decode"):
                if key not in hists:
                    ok = fail(line_no, f"{where}.histograms lacks {key}")
        elif service_shaped and "request" not in hists:
            ok = fail(line_no, f"{where}.histograms lacks request")
        for key, digest in hists.items():
            ok = check_digest(line_no, f"{where}.histograms.{key}",
                              digest) and ok
    return ok


# One exposition sample: name, optional {label="value",...} block,
# integer value (gauges may be negative; histogram buckets also carry
# le="+Inf"). MetricsRegistry renders integers only — no floats.
SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' (-?[0-9]+)$')

LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def check_exposition(first_no, block):
    """Validate one fpc.metrics.v1 text-exposition block.

    ``block`` is the list of lines after the ``# fpc.metrics.v1`` marker.
    Checks: every line parses (comment or sample), no duplicate sample
    identities, HELP/TYPE appear once per family, counters are
    non-negative, and for every histogram series the cumulative ``le``
    buckets are monotone with ``+Inf`` equal to ``_count``.
    """
    ok = True
    seen_samples = set()
    family_type = {}
    helped = set()
    # (base family, labels-without-le) -> {"buckets": [...], "inf": v,
    # "count": v, "sum": v}
    series = {}

    for offset, line in enumerate(block):
        line_no = first_no + 1 + offset
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[2]:
                ok = fail(line_no, f"malformed comment line: {line!r}")
                continue
            family = parts[2]
            if parts[1] == "TYPE":
                if family in family_type:
                    ok = fail(line_no, f"duplicate TYPE for {family}")
                elif parts[3] not in ("counter", "gauge", "histogram"):
                    ok = fail(line_no, f"unknown TYPE {parts[3]!r} for"
                                       f" {family}")
                else:
                    family_type[family] = parts[3]
            else:
                if family in helped:
                    ok = fail(line_no, f"duplicate HELP for {family}")
                helped.add(family)
            continue
        if line.startswith("#"):
            ok = fail(line_no, f"unrecognised comment line: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            ok = fail(line_no, f"unparseable sample line: {line!r}")
            continue
        name, label_text, value = m.group(1), m.group(2) or "", \
            int(m.group(3))
        identity = name + label_text
        if identity in seen_samples:
            ok = fail(line_no, f"duplicate sample {identity}")
        seen_samples.add(identity)

        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) \
                    and name[:-len(suffix)] in family_type:
                base = name[:-len(suffix)]
                break
        mtype = family_type.get(base)
        if mtype is None:
            ok = fail(line_no, f"sample {name} has no TYPE line")
            continue
        if mtype != "gauge" and value < 0:
            ok = fail(line_no, f"{mtype} sample {identity} is negative:"
                               f" {value}")
        if mtype != "histogram":
            continue

        labels = dict(LABEL_RE.findall(label_text))
        le = labels.pop("le", None)
        rest = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
        entry = series.setdefault((base, rest),
                                  {"buckets": [], "inf": None,
                                   "count": None, "sum": None})
        if name.endswith("_bucket"):
            if le is None:
                ok = fail(line_no, f"{identity} lacks an le label")
            elif le == "+Inf":
                entry["inf"] = value
            else:
                entry["buckets"].append((int(le), value))
        elif name.endswith("_sum"):
            entry["sum"] = value
        elif name.endswith("_count"):
            entry["count"] = value

    for (base, rest), entry in series.items():
        where = f"{base}{{{rest}}}" if rest else base
        for field in ("inf", "count", "sum"):
            if entry[field] is None:
                ok = fail(first_no, f"histogram {where} lacks"
                                    f" {field} sample")
        bounds = [b for b, _ in entry["buckets"]]
        values = [v for _, v in entry["buckets"]]
        if bounds != sorted(bounds):
            ok = fail(first_no, f"histogram {where} le bounds out of"
                                " order")
        if any(a > b for a, b in zip(values, values[1:])):
            ok = fail(first_no, f"histogram {where} cumulative buckets"
                                " decrease")
        if entry["inf"] is not None:
            if values and values[-1] > entry["inf"]:
                ok = fail(first_no, f"histogram {where} last bucket"
                                    " exceeds +Inf")
            if entry["count"] is not None \
                    and entry["inf"] != entry["count"]:
                ok = fail(first_no, f"histogram {where} +Inf bucket"
                                    f" ({entry['inf']}) != _count"
                                    f" ({entry['count']})")

    if not seen_samples:
        ok = fail(first_no, "exposition block has no samples")
    return ok


def main(argv):
    allow_empty = "--allow-empty" in argv
    paths = [a for a in argv[1:] if not a.startswith("--")]

    lines = []
    if paths:
        for path in paths:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                lines.extend(f.read().splitlines())
    else:
        lines = sys.stdin.read().splitlines()

    seen = 0
    ok = True
    index = 0
    while index < len(lines):
        line_no = index + 1
        line = lines[index].strip()
        index += 1
        if line == f"# {METRICS_TAG}":
            # Consume the contiguous exposition block: comment and
            # sample lines until a blank line, a JSON line, or EOF.
            block = []
            while index < len(lines):
                text = lines[index].rstrip("\r\n")
                if not text.strip() or text.lstrip().startswith("{"):
                    break
                block.append(text)
                index += 1
            seen += 1
            ok = check_exposition(line_no, block) and ok
            continue
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue  # not for us (e.g. an inspect line)
        if not isinstance(doc, dict):
            continue
        tag = doc.get("schema")
        if tag == TELEMETRY_TAG:
            seen += 1
            line_ok = check_telemetry(line_no, doc)
            if line_ok and not allow_empty:
                line_ok = check_telemetry_content(line_no, doc)
        elif tag == TRACE_TAG:
            seen += 1
            line_ok = check_trace(line_no, doc)
            if line_ok and not allow_empty:
                line_ok = check_trace_content(line_no, doc)
        elif tag == BENCH_TAG:
            seen += 1
            line_ok = check_bench(line_no, doc)
        else:
            continue
        ok = line_ok and ok

    if seen == 0:
        print("check_stats_schema: no recognised schema lines found"
              f" ({TELEMETRY_TAG} / {TRACE_TAG} / {BENCH_TAG} /"
              f" {METRICS_TAG})",
              file=sys.stderr)
        return 1
    if ok:
        print(f"check_stats_schema: {seen} line(s) OK")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
