#!/usr/bin/env python3
"""Validate fpc.telemetry.v1 JSON lines.

Reads stdin (or the files named on the command line), ignores every line
that is not a JSON object carrying ``"schema": "fpc.telemetry.v1"``, and
checks each telemetry line field-by-field against the schema emitted by
``Telemetry::ToJson`` (src/core/telemetry.cc):

  - top-level keys: schema, executor, algorithm, compress, decompress,
    chunks, mplg, arena, stages;
  - compress/decompress: calls, input_bytes, output_bytes, wall_ns — all
    non-negative integers;
  - chunks: encoded, raw_fallback, decoded with raw_fallback <= encoded;
  - mplg: subchunks, enhanced_subchunks with enhanced <= subchunks;
  - arena: high_water_bytes;
  - stages: exactly the seven stages, in StageId order, each with an
    encode and a decode block of the four counter fields.

Exit code 0 when every telemetry line validates and at least one was seen
(pass ``--allow-empty`` when hooks are compiled out and context/counter
content is not expected), 1 otherwise. Wired into ctest as the
``stats_schema`` test (tests/stats_schema.cmake); also usable ad hoc:

    fpczip -c -a DPratio --stats in.bin out.fpcz 2>&1 | \\
        python3 tools/check_stats_schema.py
"""

import json
import sys

SCHEMA_TAG = "fpc.telemetry.v1"

STAGE_ORDER = ["DIFFMS", "MPLG", "BIT", "RZE", "FCM", "RAZE", "RARE"]

COUNTER_FIELDS = ["calls", "input_bytes", "output_bytes", "wall_ns"]

TOP_KEYS = [
    "schema",
    "executor",
    "algorithm",
    "compress",
    "decompress",
    "chunks",
    "mplg",
    "arena",
    "stages",
]


def fail(line_no, message):
    print(f"check_stats_schema: line {line_no}: {message}", file=sys.stderr)
    return False


def check_counters(line_no, where, block):
    if not isinstance(block, dict):
        return fail(line_no, f"{where} is not an object")
    ok = True
    for field in COUNTER_FIELDS:
        value = block.get(field)
        if not isinstance(value, int) or value < 0:
            ok = fail(line_no, f"{where}.{field} missing or not a"
                               f" non-negative integer: {value!r}")
    return ok


def check_line(line_no, doc):
    ok = True
    for key in TOP_KEYS:
        if key not in doc:
            ok = fail(line_no, f"missing top-level key {key!r}")
    if not ok:
        return False
    extra = set(doc) - set(TOP_KEYS)
    if extra:
        ok = fail(line_no, f"unknown top-level keys {sorted(extra)}"
                           " (bump the schema tag instead)")

    for direction in ("compress", "decompress"):
        ok = check_counters(line_no, direction, doc[direction]) and ok

    chunks = doc["chunks"]
    for field in ("encoded", "raw_fallback", "decoded"):
        if not isinstance(chunks.get(field), int) or chunks[field] < 0:
            ok = fail(line_no, f"chunks.{field} missing or invalid")
    if ok and chunks["raw_fallback"] > chunks["encoded"]:
        ok = fail(line_no, "chunks.raw_fallback exceeds chunks.encoded")

    mplg = doc["mplg"]
    for field in ("subchunks", "enhanced_subchunks"):
        if not isinstance(mplg.get(field), int) or mplg[field] < 0:
            ok = fail(line_no, f"mplg.{field} missing or invalid")
    if ok and mplg["enhanced_subchunks"] > mplg["subchunks"]:
        ok = fail(line_no, "mplg.enhanced_subchunks exceeds subchunks")

    arena = doc["arena"]
    if not isinstance(arena.get("high_water_bytes"), int):
        ok = fail(line_no, "arena.high_water_bytes missing or invalid")

    stages = doc["stages"]
    if not isinstance(stages, list):
        return fail(line_no, "stages is not an array")
    names = [s.get("stage") for s in stages if isinstance(s, dict)]
    if names != STAGE_ORDER:
        ok = fail(line_no, f"stage array is {names}, expected fixed order"
                           f" {STAGE_ORDER}")
    for stage in stages:
        if not isinstance(stage, dict):
            ok = fail(line_no, "stage entry is not an object")
            continue
        label = f"stages[{stage.get('stage')!r}]"
        for direction in ("encode", "decode"):
            if direction not in stage:
                ok = fail(line_no, f"{label} lacks a {direction} block")
            else:
                ok = check_counters(line_no, f"{label}.{direction}",
                                    stage[direction]) and ok
    return ok


def check_content(line_no, doc):
    """Extra checks for builds with hooks compiled in: an instrumented
    compress run must have filled in its context and counters."""
    ok = True
    if not doc["executor"]:
        ok = fail(line_no, "executor is empty (no SetContext call?)")
    if not doc["algorithm"]:
        ok = fail(line_no, "algorithm is empty")
    if doc["compress"]["calls"] + doc["decompress"]["calls"] == 0:
        ok = fail(line_no, "neither compress nor decompress ran in an"
                           " instrumented run")
    if doc["chunks"]["encoded"] + doc["chunks"]["decoded"] == 0:
        ok = fail(line_no, "no chunks processed in an instrumented run")
    sum_of_stages = sum(s["encode"]["calls"] + s["decode"]["calls"]
                        for s in doc["stages"])
    if sum_of_stages == 0:
        ok = fail(line_no, "every stage counter is 0 for an instrumented"
                           " run")
    return ok


def main(argv):
    allow_empty = "--allow-empty" in argv
    paths = [a for a in argv[1:] if not a.startswith("--")]

    lines = []
    if paths:
        for path in paths:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                lines.extend(f.read().splitlines())
    else:
        lines = sys.stdin.read().splitlines()

    seen = 0
    ok = True
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue  # not for us (e.g. an inspect line)
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_TAG:
            continue
        seen += 1
        ok = check_line(line_no, doc) and ok
        if ok and not allow_empty:
            ok = check_content(line_no, doc)

    if seen == 0:
        print("check_stats_schema: no fpc.telemetry.v1 lines found",
              file=sys.stderr)
        return 1
    if ok:
        print(f"check_stats_schema: {seen} telemetry line(s) OK")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
