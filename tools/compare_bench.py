#!/usr/bin/env python3
"""Compare two fpc.bench.v1 reports and fail on regressions.

    compare_bench.py BASELINE.json CURRENT.json [--tolerance=0.10]

Gate rules (the ctest ``bench`` label wires this against the last
committed BENCH_pr<N>.json at the repo root):

  - Both files must be ``fpc.bench.v1`` with the same config fingerprint
    (same corpus + methodology); anything else is an error, not a pass —
    rerun ``bench_regress`` with default knobs or refresh the baseline.
  - Every (algorithm, backend) configuration in the baseline must still
    be present.
  - Compression ratio must not drop at all: the codec is deterministic,
    so any ratio change is a real behaviour change (improvements pass and
    should be committed as a new baseline).
  - Compression/decompression throughput must not drop by more than the
    tolerance (default 10%). Throughput checks are skipped — with a
    notice — when the recorded machine facts (threads, telemetry build
    flag, dispatched kernel ISA) differ between the two reports, because
    those numbers are not comparable; the ratio check still applies.

Exit code 0 when the gate passes, 1 on any regression or usage error.
"""

import json
import sys

SCHEMA_TAG = "fpc.bench.v1"


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            doc = json.loads(line)
            if isinstance(doc, dict) and doc.get("schema") == SCHEMA_TAG:
                return doc
    raise ValueError(f"{path}: no {SCHEMA_TAG} line found")


def result_map(doc):
    return {(r["algorithm"], r["backend"]): r for r in doc["results"]}


def main(argv):
    tolerance = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(f"compare_bench: unknown option {arg}", file=sys.stderr)
            return 1
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 1

    try:
        baseline = load_report(paths[0])
        current = load_report(paths[1])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"compare_bench: {e}", file=sys.stderr)
        return 1

    base_cfg = baseline["config"]
    cur_cfg = current["config"]
    if base_cfg["fingerprint"] != cur_cfg["fingerprint"]:
        print("compare_bench: config fingerprint mismatch "
              f"({base_cfg['fingerprint']} vs {cur_cfg['fingerprint']}); "
              "the reports measured different corpora and cannot be "
              "compared — rerun with default knobs or refresh the "
              "baseline", file=sys.stderr)
        return 1

    check_throughput = True
    for fact in ("threads", "telemetry", "isa"):
        if base_cfg.get(fact) != cur_cfg.get(fact):
            print(f"compare_bench: note: {fact} differs "
                  f"({base_cfg.get(fact)} vs {cur_cfg.get(fact)}); "
                  "skipping throughput checks (ratios still gated)")
            check_throughput = False

    base_results = result_map(baseline)
    cur_results = result_map(current)
    failures = []
    checked = 0
    for key, base in sorted(base_results.items()):
        label = f"{key[0]}@{key[1]}"
        cur = cur_results.get(key)
        if cur is None:
            failures.append(f"{label}: configuration missing from current"
                            " report")
            continue
        checked += 1
        if cur["ratio"] < base["ratio"] - 1e-9:
            failures.append(
                f"{label}: ratio regressed {base['ratio']:.6f} -> "
                f"{cur['ratio']:.6f}")
        if not check_throughput:
            continue
        for metric in ("compress_gbps", "decompress_gbps"):
            floor = base[metric] * (1.0 - tolerance)
            if cur[metric] < floor:
                drop = 100.0 * (1.0 - cur[metric] / base[metric])
                failures.append(
                    f"{label}: {metric} regressed {drop:.1f}% "
                    f"({base[metric]:.3f} -> {cur[metric]:.3f}, "
                    f"tolerance {100 * tolerance:.0f}%)")

    for failure in failures:
        print(f"compare_bench: FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"compare_bench: OK: {checked} configuration(s) within "
          f"tolerance ({100 * tolerance:.0f}% throughput, 0% ratio)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
