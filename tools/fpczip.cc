/**
 * @file
 * fpczip — command-line lossless compressor for scientific floating-point
 * data (the four ASPLOS'25 algorithms).
 *
 * Usage:
 *   fpczip -c [-a SPspeed|SPratio|DPspeed|DPratio] [--backend=NAME] IN OUT
 *   fpczip -d [--backend=NAME] IN OUT
 *   fpczip -i IN                  human-readable header summary
 *   fpczip inspect IN             one JSON line of container metadata
 *   fpczip -V | --version         version, compiled + dispatched ISA
 *
 * -a picks the algorithm (default SPspeed — pick DP* for doubles; the
 *    element width is never guessed from the file size).
 * --backend selects an executor-registry backend (cpu, gpusim:4090,
 *    gpusim:a100); all backends produce bit-identical containers (see
 *    DESIGN.md). -g is shorthand for --backend=gpusim:4090.
 * --stats prints one "fpc.telemetry.v2" JSON line (per-stage wall time
 *    and byte flow, chunk/raw counts, latency histogram digests; see
 *    DESIGN.md "Observability") to stderr after a -c/-d run, so stdout
 *    stays scriptable.
 * --stats-file=PATH writes that same JSON line to PATH instead of stderr
 *    (implies --stats).
 * --trace=FILE records a hierarchical span timeline of the run (run →
 *    worker → chunk → stage; "fpc.trace.v1") and writes it to FILE as
 *    Chrome trace-event JSON, loadable in Perfetto / chrome://tracing.
 * --isa=NAME forces the CPU kernel dispatch level (scalar, avx2,
 *    avx512); errors out if the level is not compiled in or the CPU
 *    lacks it. Every level produces bit-identical containers.
 *
 * Exit codes: 0 success, 1 I/O or internal error, 2 usage error,
 * 3 corrupt or truncated compressed stream (the message names the stage
 * and byte offset that failed validation).
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/codec.h"
#include "core/executor.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "util/cpu_features.h"
#include "util/timer.h"

namespace {

fpc::Bytes
ReadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw fpc::UsageError("cannot open " + path);
    std::streamsize size = in.tellg();
    in.seekg(0);
    fpc::Bytes data(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(data.data()), size);
    if (!in) throw fpc::UsageError("cannot read " + path);
    return data;
}

void
WriteFile(const std::string& path, const fpc::Bytes& data)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) throw fpc::UsageError("cannot open " + path);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) throw fpc::UsageError("cannot write " + path);
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage: fpczip -c [-a ALGO] [--backend=NAME] IN OUT   compress\n"
        "       fpczip -d [--backend=NAME] IN OUT             decompress\n"
        "       fpczip -i IN                      inspect header (text)\n"
        "       fpczip inspect IN                 inspect header (JSON)\n"
        "       fpczip -V | --version     version + SIMD kernel levels\n"
        "ALGO:    SPspeed (default) | SPratio | DPspeed | DPratio\n"
        "NAME:    cpu (default) | gpusim:4090 | gpusim:a100\n"
        "-g:      shorthand for --backend=gpusim:4090 (identical output)\n"
        "--isa=LEVEL: force the CPU kernel level (scalar | avx2 | avx512;\n"
        "         every level produces bit-identical containers)\n"
        "--stats: print per-stage telemetry JSON to stderr after -c/-d\n"
        "--stats-file=PATH: write that JSON to PATH instead of stderr\n"
        "--trace=FILE: write a Chrome trace-event timeline of the run\n");
    return 2;
}

/** Print the container metadata of @p files[0] as one JSON line. */
int
InspectJson(const std::string& path)
{
    fpc::Bytes data = ReadFile(path);
    fpc::CompressedInfo info = fpc::Inspect(data);
    std::string raw_indices = "[";
    for (size_t c = 0; c < info.chunk_raw.size(); ++c) {
        if (info.chunk_raw[c] == 0) continue;
        if (raw_indices.size() > 1) raw_indices += ", ";
        raw_indices += std::to_string(c);
    }
    raw_indices += "]";
    std::printf("{\"algorithm\": \"%s\", \"algorithm_id\": %u, "
                "\"original_size\": %llu, "
                "\"transformed_size\": %llu, \"compressed_size\": %llu, "
                "\"chunk_count\": %u, \"raw_chunks\": %u, "
                "\"raw_chunk_indices\": %s, \"isa\": \"%s\", "
                "\"ratio\": %.6f}\n",
                info.algorithm_name.c_str(),
                static_cast<unsigned>(info.algorithm),
                static_cast<unsigned long long>(info.original_size),
                static_cast<unsigned long long>(info.transformed_size),
                static_cast<unsigned long long>(info.compressed_size),
                info.chunk_count, info.raw_chunks, raw_indices.c_str(),
                fpc::simd::IsaName(fpc::simd::DefaultIsa()), info.ratio);
    return 0;
}

/** -V / --version: version plus compiled and dispatched kernel levels. */
int
PrintVersion()
{
    std::printf("fpczip 1.0.0\n"
                "compiled ISA levels: %s\n"
                "dispatched ISA:      %s\n",
                fpc::simd::CompiledIsaLevels().c_str(),
                fpc::simd::IsaName(fpc::simd::DefaultIsa()));
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        enum {
            kNone,
            kCompress,
            kDecompress,
            kInspect,
            kInspectJson
        } action = kNone;
        fpc::Options options;
        fpc::Telemetry stats_sink;
        fpc::TraceSink trace_sink;
        bool want_stats = false;
        std::string stats_path;
        std::string trace_path;
        fpc::Algorithm algorithm = fpc::Algorithm::kSPspeed;
        std::vector<std::string> files;

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "-c") {
                action = kCompress;
            } else if (arg == "-d") {
                action = kDecompress;
            } else if (arg == "-i") {
                action = kInspect;
            } else if (arg == "inspect" && action == kNone) {
                action = kInspectJson;
            } else if (arg == "-V" || arg == "--version") {
                return PrintVersion();
            } else if (arg.rfind("--isa=", 0) == 0) {
                options.with_isa(arg.substr(std::strlen("--isa=")));
            } else if (arg == "-g") {
                options.executor = &fpc::GetExecutor("gpusim:4090");
            } else if (arg.rfind("--backend=", 0) == 0) {
                options.executor =
                    &fpc::GetExecutor(arg.substr(std::strlen("--backend=")));
            } else if (arg == "--stats") {
                want_stats = true;
                options.telemetry = &stats_sink;
            } else if (arg.rfind("--stats-file=", 0) == 0) {
                want_stats = true;
                stats_path = arg.substr(std::strlen("--stats-file="));
                if (stats_path.empty()) return Usage();
                options.telemetry = &stats_sink;
            } else if (arg.rfind("--trace=", 0) == 0) {
                trace_path = arg.substr(std::strlen("--trace="));
                if (trace_path.empty()) return Usage();
                options.trace = &trace_sink;
            } else if (arg == "-a" && i + 1 < argc) {
                algorithm = fpc::ParseAlgorithm(argv[++i]);
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                files.push_back(arg);
            }
        }

        if (action == kInspectJson) {
            if (files.size() != 1) return Usage();
            return InspectJson(files[0]);
        }

        if (action == kInspect) {
            if (files.size() != 1) return Usage();
            fpc::Bytes data = ReadFile(files[0]);
            fpc::CompressedInfo info = fpc::Inspect(data);
            std::printf("algorithm:        %s\n",
                        fpc::AlgorithmName(info.algorithm));
            std::printf("original size:    %llu bytes\n",
                        static_cast<unsigned long long>(info.original_size));
            std::printf("compressed size:  %zu bytes\n", data.size());
            std::printf("ratio:            %.3f\n", info.ratio);
            std::printf("chunks:           %u (%u stored raw)\n",
                        info.chunk_count, info.raw_chunks);
            return 0;
        }

        if (action == kNone || files.size() != 2) return Usage();
        fpc::Bytes input = ReadFile(files[0]);
        fpc::Timer timer;
        fpc::Bytes output;
        if (action == kCompress) {
            output = fpc::Compress(algorithm, fpc::ByteSpan(input), options);
            double seconds = timer.Seconds();
            std::printf("%s: %zu -> %zu bytes (ratio %.3f) in %.3fs "
                        "(%.2f GB/s)\n",
                        fpc::AlgorithmName(algorithm), input.size(),
                        output.size(),
                        static_cast<double>(input.size()) /
                            static_cast<double>(output.size()),
                        seconds, input.size() / 1e9 / seconds);
        } else {
            output = fpc::Decompress(fpc::ByteSpan(input), options);
            double seconds = timer.Seconds();
            std::printf("%zu -> %zu bytes in %.3fs (%.2f GB/s)\n",
                        input.size(), output.size(), seconds,
                        output.size() / 1e9 / seconds);
        }
        WriteFile(files[1], output);
        if (want_stats) {
            if (stats_path.empty()) {
                // stderr keeps stdout scriptable; with FPC_TELEMETRY=0
                // the line still appears, with zeroed counters.
                std::fprintf(stderr, "%s\n", stats_sink.ToJson().c_str());
            } else {
                std::ofstream stats_out(stats_path);
                if (!stats_out) {
                    throw fpc::UsageError("cannot open " + stats_path);
                }
                stats_out << stats_sink.ToJson() << "\n";
                if (!stats_out) {
                    throw fpc::UsageError("cannot write " + stats_path);
                }
            }
        }
        if (!trace_path.empty() && !trace_sink.WriteJson(trace_path)) {
            throw fpc::UsageError("cannot write " + trace_path);
        }
        return 0;
    } catch (const fpc::CorruptStreamError& e) {
        // Distinct exit code so scripted callers can tell damaged input
        // from I/O or usage failures; e.what() carries stage + offset.
        std::fprintf(stderr, "fpczip: %s\n", e.what());
        return 3;
    } catch (const fpc::UsageError& e) {
        std::fprintf(stderr, "fpczip: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fpczip: %s\n", e.what());
        return 1;
    }
}
