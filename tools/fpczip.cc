/**
 * @file
 * fpczip — command-line lossless compressor for scientific floating-point
 * data (the four ASPLOS'25 algorithms).
 *
 * Usage:
 *   fpczip -c [-a SPspeed|SPratio|DPspeed|DPratio] [--backend=NAME]
 *          [--frame-bytes=N] IN OUT
 *   fpczip -d [--backend=NAME] IN OUT
 *   fpczip cat [--range=FIRST:COUNT] [--workers=N] [--in-flight=M]
 *          [--read=auto|pread|mmap] IN OUT
 *   fpczip -i IN                  human-readable header summary
 *   fpczip inspect IN             one JSON line of container metadata
 *   fpczip -V | --version         version, compiled + dispatched ISA
 *
 * -a picks the algorithm (default SPspeed — pick DP* for doubles; the
 *    element width is never guessed from the file size).
 * --mode=auto probes every 16 KiB chunk at encode time and records the
 *    best-scoring pipeline per chunk in a v3 container (-a then only
 *    fixes the element width). --mode=fixed (the default) keeps the
 *    single-algorithm v1 container, byte-identical to before.
 * --frame-bytes=N makes -c emit a seekable stream: the input is cut into
 *    N-byte frames (N is rounded down to a whole number of elements),
 *    each compressed as an independent container, and a trailing seek
 *    index (format v2, core/container.h) is appended. Without it -c
 *    writes a single bare container, byte-identical to before.
 * `cat` decompresses any input — bare container, frame stream, indexed
 *    stream — reading it through a ranged ByteSource (the file is never
 *    loaded whole). Frames decode on a bounded worker pool and are
 *    written strictly in order; --workers and --in-flight bound the pool
 *    and its memory. --range=FIRST:COUNT instead decodes only the values
 *    [FIRST, FIRST+COUNT), touching only the covering frames/chunks.
 *    --read picks the ByteSource backing.
 * --backend selects an executor-registry backend (cpu, gpusim:4090,
 *    gpusim:a100); all backends produce bit-identical containers (see
 *    DESIGN.md). -g is shorthand for --backend=gpusim:4090.
 * --stats prints one "fpc.telemetry.v6" JSON line (per-stage wall time
 *    and byte flow, chunk/raw counts, latency histogram digests; see
 *    DESIGN.md "Observability") to stderr after a -c/-d run, so stdout
 *    stays scriptable.
 * --stats-file=PATH writes that same JSON line to PATH instead of stderr
 *    (implies --stats).
 * --trace=FILE records a hierarchical span timeline of the run (run →
 *    worker → chunk → stage; "fpc.trace.v1") and writes it to FILE as
 *    Chrome trace-event JSON, loadable in Perfetto / chrome://tracing.
 * --isa=NAME forces the CPU kernel dispatch level (scalar, avx2,
 *    avx512); errors out if the level is not compiled in or the CPU
 *    lacks it. Every level produces bit-identical containers.
 *
 * Exit codes follow the shared fpc::Errc table (core/errc.h) — the same
 * numbers fpcc exits with and fpcd puts in the wire status byte:
 * 0 success, 1 I/O or internal error, 2 usage error, 3 corrupt or
 * truncated compressed stream (the message names the stage and byte
 * offset that failed validation).
 */
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/codec.h"
#include "core/errc.h"
#include "core/executor.h"
#include "core/stream.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "util/byte_source.h"
#include "util/cpu_features.h"
#include "util/timer.h"

namespace {

fpc::Bytes
ReadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw fpc::UsageError("cannot open " + path);
    std::streamsize size = in.tellg();
    in.seekg(0);
    fpc::Bytes data(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(data.data()), size);
    if (!in) throw fpc::UsageError("cannot read " + path);
    return data;
}

void
WriteFile(const std::string& path, const fpc::Bytes& data)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) throw fpc::UsageError("cannot open " + path);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) throw fpc::UsageError("cannot write " + path);
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage: fpczip -c [-a ALGO] [--backend=NAME] [--frame-bytes=N]\n"
        "              IN OUT                                compress\n"
        "       fpczip -d [--backend=NAME] IN OUT             decompress\n"
        "       fpczip cat [--range=FIRST:COUNT] [--workers=N]\n"
        "              [--in-flight=M] [--read=auto|pread|mmap] IN OUT\n"
        "                     streaming / random-access decompress\n"
        "       fpczip -i IN                      inspect header (text)\n"
        "       fpczip inspect IN                 inspect header (JSON)\n"
        "       fpczip -V | --version     version + SIMD kernel levels\n"
        "ALGO:    SPspeed (default) | SPratio | DPspeed | DPratio\n"
        "NAME:    cpu (default) | gpusim:4090 | gpusim:a100\n"
        "--mode=auto|fixed: auto probes every 16 KiB chunk and records\n"
        "         the best pipeline per chunk (a v3 container; -a then\n"
        "         only fixes the element width). Default: fixed\n"
        "-g:      shorthand for --backend=gpusim:4090 (identical output)\n"
        "--frame-bytes=N: cut the input into N-byte frames (suffixes k/m/g)\n"
        "         and append a seek index — a seekable v2 stream\n"
        "--range=FIRST:COUNT: decode only values [FIRST, FIRST+COUNT),\n"
        "         touching only the covering frames and 16 KiB chunks\n"
        "--workers=N / --in-flight=M: worker pool size and max frames in\n"
        "         flight for `cat` (defaults: cores, 2 x workers)\n"
        "--read=S: ByteSource backing for `cat` (auto | pread | mmap)\n"
        "--isa=LEVEL: force the CPU kernel level (scalar | avx2 | avx512;\n"
        "         every level produces bit-identical containers)\n"
        "--stats: print per-stage telemetry JSON to stderr after a run\n"
        "--stats-file=PATH: write that JSON to PATH instead of stderr\n"
        "--trace=FILE: write a Chrome trace-event timeline of the run\n");
    return 2;
}

/** Parse a non-negative integer with an optional k/m/g (KiB/MiB/GiB)
 *  suffix. Throws UsageError on garbage, negative input, or a value
 *  whose scaled result would not fit in 64 bits. */
uint64_t
ParseSize(const std::string& text, const char* flag)
{
    // std::stoull accepts leading whitespace, '+', and even '-' (the
    // negative value wraps); none of those is a size here.
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text[0]))) {
        throw fpc::UsageError(std::string(flag) + ": not a number: " + text);
    }
    size_t pos = 0;
    uint64_t value = 0;
    try {
        value = std::stoull(text, &pos);
    } catch (const std::exception&) {
        // invalid_argument, or out_of_range for > 64-bit digit strings
        throw fpc::UsageError(std::string(flag) + ": not a number: " + text);
    }
    uint64_t scale = 1;
    if (pos < text.size()) {
        const char suffix = text[pos];
        if (suffix == 'k' || suffix == 'K') scale = uint64_t{1} << 10;
        else if (suffix == 'm' || suffix == 'M') scale = uint64_t{1} << 20;
        else if (suffix == 'g' || suffix == 'G') scale = uint64_t{1} << 30;
        else pos = text.size() + 1;  // unknown suffix -> reject below
        ++pos;
    }
    if (pos != text.size()) {
        throw fpc::UsageError(std::string(flag) + ": bad size: " + text);
    }
    if (scale != 1 && value > UINT64_MAX / scale) {
        throw fpc::UsageError(std::string(flag) +
                              ": size overflows 64 bits: " + text);
    }
    return value * scale;
}

/** Parse "FIRST:COUNT" for --range. */
void
ParseRange(const std::string& text, uint64_t& first, uint64_t& count)
{
    const size_t colon = text.find(':');
    if (colon == std::string::npos) {
        throw fpc::UsageError("--range expects FIRST:COUNT, got " + text);
    }
    first = ParseSize(text.substr(0, colon), "--range");
    count = ParseSize(text.substr(colon + 1), "--range");
}

/** JSON array of the per-frame element prefix table. */
std::string
FrameTableJson(const std::vector<fpc::SeekIndexEntry>& frames)
{
    std::string out = "[";
    for (size_t f = 0; f < frames.size(); ++f) {
        if (f != 0) out += ", ";
        out += "{\"offset\": " + std::to_string(frames[f].frame_offset) +
               ", \"size\": " + std::to_string(frames[f].frame_size) +
               ", \"elements\": " +
               std::to_string(frames[f].element_count) +
               ", \"element_prefix\": " +
               std::to_string(frames[f].element_prefix) + "}";
    }
    out += "]";
    return out;
}

/**
 * Print the metadata of @p path as one JSON line. A bare container keeps
 * the original key set (plus "format"/"seek_index"); a frame stream
 * reports the frame table instead — index presence, frame count, and the
 * per-frame element prefix table. A damaged seek-index footer throws
 * CorruptStreamError (exit code 3).
 */
int
InspectJson(const std::string& path)
{
    fpc::Bytes data = ReadFile(path);
    fpc::MemoryByteSource source{fpc::ByteSpan(data)};
    const fpc::StreamLayout layout = fpc::ResolveStreamLayout(source);
    if (layout.format == fpc::StreamLayout::Format::kStream) {
        std::printf(
            "{\"format\": \"stream\", \"seek_index\": %s, "
            "\"frame_count\": %zu, \"total_elements\": %llu, "
            "\"frames\": %s, \"isa\": \"%s\"}\n",
            layout.from_index ? "true" : "false", layout.frames.size(),
            static_cast<unsigned long long>(layout.TotalElements()),
            FrameTableJson(layout.frames).c_str(),
            fpc::simd::IsaName(fpc::simd::DefaultIsa()));
        return 0;
    }
    fpc::CompressedInfo info = fpc::Inspect(data);
    std::string raw_indices = "[";
    for (size_t c = 0; c < info.chunk_raw.size(); ++c) {
        if (info.chunk_raw[c] == 0) continue;
        if (raw_indices.size() > 1) raw_indices += ", ";
        raw_indices += std::to_string(c);
    }
    raw_indices += "]";
    // mode=auto (v3) containers additionally report the per-chunk
    // algorithm table and its per-algorithm histogram; fixed (v1)
    // containers keep the original key set plus "mode": "fixed".
    std::string adaptive;
    if (info.adaptive) {
        adaptive = "\"chunk_algorithms\": [";
        for (size_t c = 0; c < info.chunk_algorithms.size(); ++c) {
            if (c != 0) adaptive += ", ";
            adaptive += '"';
            adaptive += fpc::AlgorithmName(
                static_cast<fpc::Algorithm>(info.chunk_algorithms[c]));
            adaptive += '"';
        }
        adaptive += "], \"algorithm_chunks\": {";
        for (size_t a = 0; a < info.algorithm_chunks.size(); ++a) {
            if (a != 0) adaptive += ", ";
            adaptive += '"';
            adaptive += fpc::AlgorithmName(static_cast<fpc::Algorithm>(a));
            adaptive += "\": ";
            adaptive += std::to_string(info.algorithm_chunks[a]);
        }
        adaptive += "}, ";
    }
    std::printf("{\"algorithm\": \"%s\", \"algorithm_id\": %u, "
                "\"mode\": \"%s\", "
                "\"original_size\": %llu, "
                "\"transformed_size\": %llu, \"compressed_size\": %llu, "
                "\"chunk_count\": %u, \"raw_chunks\": %u, "
                "\"raw_chunk_indices\": %s, %s\"isa\": \"%s\", "
                "\"format\": \"container\", \"seek_index\": false, "
                "\"ratio\": %.6f}\n",
                info.algorithm_name.c_str(),
                static_cast<unsigned>(info.algorithm),
                info.adaptive ? "auto" : "fixed",
                static_cast<unsigned long long>(info.original_size),
                static_cast<unsigned long long>(info.transformed_size),
                static_cast<unsigned long long>(info.compressed_size),
                info.chunk_count, info.raw_chunks, raw_indices.c_str(),
                adaptive.c_str(),
                fpc::simd::IsaName(fpc::simd::DefaultIsa()), info.ratio);
    return 0;
}

/** -V / --version: version plus compiled and dispatched kernel levels. */
int
PrintVersion()
{
    std::printf("fpczip 1.0.0\n"
                "compiled ISA levels: %s\n"
                "dispatched ISA:      %s\n",
                fpc::simd::CompiledIsaLevels().c_str(),
                fpc::simd::IsaName(fpc::simd::DefaultIsa()));
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        enum {
            kNone,
            kCompress,
            kDecompress,
            kCat,
            kInspect,
            kInspectJson
        } action = kNone;
        fpc::Options options;
        fpc::Telemetry stats_sink;
        fpc::TraceSink trace_sink;
        bool want_stats = false;
        std::string stats_path;
        std::string trace_path;
        fpc::Algorithm algorithm = fpc::Algorithm::kSPspeed;
        uint64_t frame_bytes = 0;  // 0 = single bare container
        bool have_range = false;
        uint64_t range_first = 0;
        uint64_t range_count = 0;
        fpc::StreamPoolOptions pool;
        fpc::ReadStrategy read_strategy = fpc::ReadStrategy::kAuto;
        std::vector<std::string> files;

        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "-c") {
                action = kCompress;
            } else if (arg == "-d") {
                action = kDecompress;
            } else if (arg == "cat" && action == kNone) {
                action = kCat;
            } else if (arg == "-i") {
                action = kInspect;
            } else if (arg == "inspect" && action == kNone) {
                action = kInspectJson;
            } else if (arg == "-V" || arg == "--version") {
                return PrintVersion();
            } else if (arg.rfind("--frame-bytes=", 0) == 0) {
                frame_bytes = ParseSize(
                    arg.substr(std::strlen("--frame-bytes=")),
                    "--frame-bytes");
                if (frame_bytes == 0) {
                    throw fpc::UsageError("--frame-bytes must be > 0");
                }
            } else if (arg.rfind("--range=", 0) == 0) {
                have_range = true;
                ParseRange(arg.substr(std::strlen("--range=")), range_first,
                           range_count);
            } else if (arg.rfind("--workers=", 0) == 0) {
                pool.workers = static_cast<int>(ParseSize(
                    arg.substr(std::strlen("--workers=")), "--workers"));
            } else if (arg.rfind("--in-flight=", 0) == 0) {
                pool.max_in_flight = static_cast<int>(ParseSize(
                    arg.substr(std::strlen("--in-flight=")), "--in-flight"));
            } else if (arg.rfind("--read=", 0) == 0) {
                read_strategy = fpc::ParseReadStrategy(
                    arg.substr(std::strlen("--read=")));
            } else if (arg.rfind("--mode=", 0) == 0) {
                options.with_mode(arg.substr(std::strlen("--mode=")));
            } else if (arg.rfind("--isa=", 0) == 0) {
                options.with_isa(arg.substr(std::strlen("--isa=")));
            } else if (arg == "-g") {
                options.executor = &fpc::GetExecutor("gpusim:4090");
            } else if (arg.rfind("--backend=", 0) == 0) {
                options.executor =
                    &fpc::GetExecutor(arg.substr(std::strlen("--backend=")));
            } else if (arg == "--stats") {
                want_stats = true;
                options.telemetry = &stats_sink;
            } else if (arg.rfind("--stats-file=", 0) == 0) {
                want_stats = true;
                stats_path = arg.substr(std::strlen("--stats-file="));
                if (stats_path.empty()) return Usage();
                options.telemetry = &stats_sink;
            } else if (arg.rfind("--trace=", 0) == 0) {
                trace_path = arg.substr(std::strlen("--trace="));
                if (trace_path.empty()) return Usage();
                options.trace = &trace_sink;
            } else if (arg == "-a" && i + 1 < argc) {
                algorithm = fpc::ParseAlgorithm(argv[++i]);
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                files.push_back(arg);
            }
        }

        if (action == kInspectJson) {
            if (files.size() != 1) return Usage();
            return InspectJson(files[0]);
        }

        if (action == kInspect) {
            if (files.size() != 1) return Usage();
            fpc::Bytes data = ReadFile(files[0]);
            fpc::CompressedInfo info = fpc::Inspect(data);
            std::printf("algorithm:        %s\n",
                        fpc::AlgorithmName(info.algorithm));
            std::printf("mode:             %s\n",
                        info.adaptive ? "auto" : "fixed");
            std::printf("original size:    %llu bytes\n",
                        static_cast<unsigned long long>(info.original_size));
            std::printf("compressed size:  %zu bytes\n", data.size());
            std::printf("ratio:            %.3f\n", info.ratio);
            std::printf("chunks:           %u (%u stored raw)\n",
                        info.chunk_count, info.raw_chunks);
            if (info.adaptive) {
                for (size_t a = 0; a < info.algorithm_chunks.size(); ++a) {
                    if (info.algorithm_chunks[a] == 0) continue;
                    std::printf("  %-8s        %u chunk(s)\n",
                                fpc::AlgorithmName(
                                    static_cast<fpc::Algorithm>(a)),
                                info.algorithm_chunks[a]);
                }
            }
            return 0;
        }

        if (action == kNone || files.size() != 2) return Usage();

        if (action == kCat) {
            // The input is read through a ranged ByteSource: only the
            // bytes a decode touches are ever resident.
            std::unique_ptr<fpc::ByteSource> source =
                fpc::OpenByteSource(files[0], read_strategy);
            fpc::Timer timer;
            if (have_range) {
                fpc::Bytes out = fpc::DecompressRange(
                    *source, range_first, range_count, options);
                WriteFile(files[1], out);
                double seconds = timer.Seconds();
                std::printf("values [%llu, %llu): %zu bytes in %.3fs\n",
                            static_cast<unsigned long long>(range_first),
                            static_cast<unsigned long long>(range_first +
                                                            range_count),
                            out.size(), seconds);
            } else {
                fpc::ParallelStreamDecoder decoder(*source, pool, options);
                std::ofstream out(files[1], std::ios::binary);
                if (!out) {
                    throw fpc::UsageError("cannot open " + files[1]);
                }
                uint64_t total = 0;
                size_t frames = 0;
                while (decoder.HasNext()) {
                    fpc::Bytes frame = decoder.NextFrame();
                    out.write(reinterpret_cast<const char*>(frame.data()),
                              static_cast<std::streamsize>(frame.size()));
                    if (!out) {
                        throw fpc::UsageError("cannot write " + files[1]);
                    }
                    total += frame.size();
                    ++frames;
                }
                out.close();
                double seconds = timer.Seconds();
                std::printf("%zu frame(s), %llu -> %llu bytes in %.3fs "
                            "(%.2f GB/s, %d worker(s)%s)\n",
                            frames,
                            static_cast<unsigned long long>(source->Size()),
                            static_cast<unsigned long long>(total), seconds,
                            total / 1e9 / seconds, decoder.Workers(),
                            decoder.UsedIndex() ? ", seek index" : "");
                if (want_stats) {
                    // Merge worker shards before the snapshot below.
                    (void)decoder.stats();
                }
            }
            if (want_stats) {
                if (stats_path.empty()) {
                    std::fprintf(stderr, "%s\n",
                                 stats_sink.ToJson().c_str());
                } else {
                    std::ofstream stats_out(stats_path);
                    if (!stats_out) {
                        throw fpc::UsageError("cannot open " + stats_path);
                    }
                    stats_out << stats_sink.ToJson() << "\n";
                    if (!stats_out) {
                        throw fpc::UsageError("cannot write " + stats_path);
                    }
                }
            }
            if (!trace_path.empty() && !trace_sink.WriteJson(trace_path)) {
                throw fpc::UsageError("cannot write " + trace_path);
            }
            return 0;
        }

        fpc::Bytes input = ReadFile(files[0]);
        fpc::Timer timer;
        fpc::Bytes output;
        const char* algo_label =
            options.adaptive ? "auto" : fpc::AlgorithmName(algorithm);
        if (action == kCompress && frame_bytes > 0) {
            // Seekable v2 stream: whole-element frames + trailing index.
            const uint64_t word = fpc::AlgorithmWordSize(algorithm);
            uint64_t step = frame_bytes - frame_bytes % word;
            if (step == 0) step = word;
            if (input.size() % word != 0) {
                throw fpc::UsageError(
                    "--frame-bytes: input is not a whole number of " +
                    std::string(fpc::AlgorithmName(algorithm)) +
                    " elements");
            }
            fpc::StreamCompressor compressor(algorithm, options);
            for (uint64_t at = 0; at < input.size(); at += step) {
                const uint64_t len =
                    std::min<uint64_t>(step, input.size() - at);
                compressor.PutFrame(fpc::ByteSpan(input).subspan(
                    static_cast<size_t>(at), static_cast<size_t>(len)));
            }
            output = compressor.FinishWithIndex();
            double seconds = timer.Seconds();
            std::printf("%s: %zu -> %zu bytes (%zu frame(s) + seek index, "
                        "ratio %.3f) in %.3fs (%.2f GB/s)\n",
                        algo_label, input.size(),
                        output.size(), compressor.FrameCount(),
                        static_cast<double>(input.size()) /
                            static_cast<double>(output.size()),
                        seconds, input.size() / 1e9 / seconds);
        } else if (action == kCompress) {
            output = fpc::Compress(algorithm, fpc::ByteSpan(input), options);
            double seconds = timer.Seconds();
            std::printf("%s: %zu -> %zu bytes (ratio %.3f) in %.3fs "
                        "(%.2f GB/s)\n",
                        algo_label, input.size(),
                        output.size(),
                        static_cast<double>(input.size()) /
                            static_cast<double>(output.size()),
                        seconds, input.size() / 1e9 / seconds);
        } else {
            output = fpc::Decompress(fpc::ByteSpan(input), options);
            double seconds = timer.Seconds();
            std::printf("%zu -> %zu bytes in %.3fs (%.2f GB/s)\n",
                        input.size(), output.size(), seconds,
                        output.size() / 1e9 / seconds);
        }
        WriteFile(files[1], output);
        if (want_stats) {
            if (stats_path.empty()) {
                // stderr keeps stdout scriptable; with FPC_TELEMETRY=0
                // the line still appears, with zeroed counters.
                std::fprintf(stderr, "%s\n", stats_sink.ToJson().c_str());
            } else {
                std::ofstream stats_out(stats_path);
                if (!stats_out) {
                    throw fpc::UsageError("cannot open " + stats_path);
                }
                stats_out << stats_sink.ToJson() << "\n";
                if (!stats_out) {
                    throw fpc::UsageError("cannot write " + stats_path);
                }
            }
        }
        if (!trace_path.empty() && !trace_sink.WriteJson(trace_path)) {
            throw fpc::UsageError("cannot write " + trace_path);
        }
        return 0;
    } catch (const std::exception& e) {
        // One mapping table for every front-end (core/errc.h): corrupt
        // input, usage errors, and internal failures keep their distinct
        // exit codes; e.what() carries stage + offset for corrupt input.
        std::fprintf(stderr, "fpczip: %s\n", e.what());
        return fpc::ExitCodeOf(fpc::CurrentErrc());
    }
}
