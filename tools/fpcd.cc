/**
 * @file
 * fpcd — the fpcomp compression daemon: a long-lived process serving
 * compress/decompress/decompress_range/inspect requests over a
 * unix-domain socket (framed protocol, service/protocol.h), scheduling
 * them through fpc::Service (bounded queue, per-tenant QoS, pooled
 * scratch arenas).
 *
 * Usage:
 *   fpcd --socket=PATH [--workers=N] [--queue=N] [--request-threads=N]
 *        [--rate-mbps=N] [--burst-mb=N] [--max-in-flight=N]
 *        [--stats-file=PATH] [--trace=FILE]
 *
 * --socket=PATH       listening unix-domain socket (required). A stale
 *                     socket file from a crashed daemon is replaced.
 * --workers=N         scheduler worker threads (default min(4, cores)).
 * --queue=N           pending-request capacity before submissions are
 *                     rejected with the busy status (default 256).
 * --request-threads=N intra-request thread count (default 1; service
 *                     throughput comes from request parallelism).
 * --rate-mbps=N       default per-tenant token-bucket refill rate in
 *                     MB/s of request payload (default: unlimited).
 * --burst-mb=N        default per-tenant burst allowance in MiB
 *                     (default 8).
 * --max-in-flight=N   default per-tenant cap on queued + executing
 *                     requests (default: unlimited).
 * --stats-file=PATH   write the final "fpc.telemetry.v5" JSON line
 *                     (per-stage counters + the per-tenant "service"
 *                     block) to PATH on shutdown. `fpcc stats` reads the
 *                     same JSON live.
 * --trace=FILE        record one span per request and write a Chrome
 *                     trace-event timeline to FILE on shutdown.
 *
 * The daemon runs in the foreground until `fpcc shutdown` or
 * SIGINT/SIGTERM; exit codes follow the shared fpc::Errc table
 * (core/errc.h).
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/errc.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "service/server.h"

namespace {

// SIGINT/SIGTERM land here; the main thread polls the flag while
// waiting for a client-driven shutdown.
volatile std::sig_atomic_t g_signalled = 0;

void
OnSignal(int)
{
    g_signalled = 1;
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage: fpcd --socket=PATH [--workers=N] [--queue=N]\n"
        "            [--request-threads=N] [--rate-mbps=N] [--burst-mb=N]\n"
        "            [--max-in-flight=N] [--stats-file=PATH] "
        "[--trace=FILE]\n"
        "Serves compress/decompress/decompress_range/inspect requests\n"
        "over the unix-domain socket until `fpcc shutdown` or SIGTERM.\n");
    return fpc::ExitCodeOf(fpc::Errc::kUsage);
}

uint64_t
ParseCount(const std::string& text, const char* flag)
{
    try {
        size_t pos = 0;
        const uint64_t value = std::stoull(text, &pos);
        if (pos != text.size()) throw std::invalid_argument(text);
        return value;
    } catch (const std::exception&) {
        throw fpc::UsageError(std::string(flag) + ": not a number: " + text);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        fpc::ServerConfig config;
        std::string stats_path;
        std::string trace_path;
        fpc::Telemetry stats_sink;
        fpc::TraceSink trace_sink;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char* flag) {
                return arg.substr(std::strlen(flag));
            };
            if (arg.rfind("--socket=", 0) == 0) {
                config.socket_path = value("--socket=");
            } else if (arg.rfind("--workers=", 0) == 0) {
                config.service.workers = static_cast<int>(
                    ParseCount(value("--workers="), "--workers"));
            } else if (arg.rfind("--queue=", 0) == 0) {
                config.service.queue_capacity = static_cast<size_t>(
                    ParseCount(value("--queue="), "--queue"));
            } else if (arg.rfind("--request-threads=", 0) == 0) {
                config.service.request_threads =
                    static_cast<int>(ParseCount(value("--request-threads="),
                                                "--request-threads"));
            } else if (arg.rfind("--rate-mbps=", 0) == 0) {
                config.service.default_qos.rate_bytes_per_sec =
                    ParseCount(value("--rate-mbps="), "--rate-mbps") *
                    1000000;
            } else if (arg.rfind("--burst-mb=", 0) == 0) {
                config.service.default_qos.burst_bytes =
                    ParseCount(value("--burst-mb="), "--burst-mb") << 20;
            } else if (arg.rfind("--max-in-flight=", 0) == 0) {
                config.service.default_qos.max_in_flight =
                    static_cast<uint32_t>(ParseCount(
                        value("--max-in-flight="), "--max-in-flight"));
            } else if (arg.rfind("--stats-file=", 0) == 0) {
                stats_path = value("--stats-file=");
                if (stats_path.empty()) return Usage();
            } else if (arg.rfind("--trace=", 0) == 0) {
                trace_path = value("--trace=");
                if (trace_path.empty()) return Usage();
            } else {
                return Usage();
            }
        }
        if (config.socket_path.empty()) return Usage();
        config.service.telemetry = &stats_sink;
        if (!trace_path.empty()) config.service.trace = &trace_sink;

        std::signal(SIGINT, OnSignal);
        std::signal(SIGTERM, OnSignal);
        std::signal(SIGPIPE, SIG_IGN);

        fpc::SocketServer server(config);
        std::fprintf(stderr,
                     "fpcd: listening on %s (%d worker(s), queue %zu)\n",
                     server.Path().c_str(), server.service().workers(),
                     config.service.queue_capacity);

        // Wait for `fpcc shutdown` or a signal; signals cannot wake a
        // condition variable, so the wait polls in short slices.
        while (!server.WaitForShutdownFor(std::chrono::milliseconds(200))) {
            if (g_signalled != 0) {
                std::fprintf(stderr, "fpcd: signalled, shutting down\n");
                break;
            }
        }
        server.Stop();

        if (!stats_path.empty()) {
            std::FILE* out = std::fopen(stats_path.c_str(), "w");
            if (out == nullptr) {
                throw fpc::UsageError("cannot open " + stats_path);
            }
            std::fprintf(out, "%s\n", stats_sink.ToJson().c_str());
            std::fclose(out);
        }
        if (!trace_path.empty() && !trace_sink.WriteJson(trace_path)) {
            throw fpc::UsageError("cannot write " + trace_path);
        }
        return fpc::ExitCodeOf(fpc::Errc::kOk);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fpcd: %s\n", e.what());
        return fpc::ExitCodeOf(fpc::CurrentErrc());
    }
}
