/**
 * @file
 * fpcd — the fpcomp compression daemon: a long-lived process serving
 * compress/decompress/decompress_range/inspect requests over a
 * unix-domain socket (framed protocol, service/protocol.h), scheduling
 * them through fpc::Service (bounded queue, per-tenant QoS, pooled
 * scratch arenas).
 *
 * Usage:
 *   fpcd --socket=PATH [--workers=N] [--queue=N] [--request-threads=N]
 *        [--rate-mbps=N] [--burst-mb=N] [--max-in-flight=N]
 *        [--stats-file=PATH] [--trace=FILE] [--metrics-socket=PATH]
 *        [--drain-ms=N] [--log-level=LEVEL]
 *
 * --socket=PATH       listening unix-domain socket (required). A stale
 *                     socket file from a crashed daemon is replaced.
 * --workers=N         scheduler worker threads (default min(4, cores)).
 * --queue=N           pending-request capacity before submissions are
 *                     rejected with the busy status (default 256).
 * --request-threads=N intra-request thread count (default 1; service
 *                     throughput comes from request parallelism).
 * --rate-mbps=N       default per-tenant token-bucket refill rate in
 *                     MB/s of request payload (default: unlimited).
 * --burst-mb=N        default per-tenant burst allowance in MiB
 *                     (default 8).
 * --max-in-flight=N   default per-tenant cap on queued + executing
 *                     requests (default: unlimited).
 * --stats-file=PATH   write the final "fpc.telemetry.v6" JSON line
 *                     (per-stage counters, the per-tenant "service"
 *                     block, and the "metrics_snapshot" mirror) to PATH
 *                     on shutdown. `fpcc stats` reads the same JSON
 *                     live.
 * --trace=FILE        record one span per request and write a Chrome
 *                     trace-event timeline to FILE on shutdown.
 * --metrics-socket=PATH  serve HTTP `GET /metrics` (Prometheus text
 *                     exposition) and `GET /healthz` on a second unix
 *                     socket: `curl --unix-socket PATH
 *                     http://localhost/metrics`.
 * --drain-ms=N        graceful-shutdown budget (default 5000): on
 *                     SIGTERM/SIGINT/`fpcc shutdown` the daemon stops
 *                     reading, answers every in-flight request, and
 *                     only then exits; connections still busy after N
 *                     ms are cut.
 * --log-level=LEVEL   debug|info|warn|error|off — threshold of the
 *                     structured request log (one JSON line per
 *                     request on stderr; FPC_LOG_FILE redirects it).
 *                     Default: FPC_LOG_LEVEL, or info.
 *
 * The daemon runs in the foreground until `fpcc shutdown` or
 * SIGINT/SIGTERM; exit codes follow the shared fpc::Errc table
 * (core/errc.h). The final metrics exposition is printed to stderr at
 * shutdown so a scrape-less run still leaves a snapshot behind.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/errc.h"
#include "core/log.h"
#include "core/metrics.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "service/metrics_http.h"
#include "service/server.h"

namespace {

// SIGINT/SIGTERM land here; the main thread polls the flag while
// waiting for a client-driven shutdown.
volatile std::sig_atomic_t g_signalled = 0;

void
OnSignal(int)
{
    g_signalled = 1;
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage: fpcd --socket=PATH [--workers=N] [--queue=N]\n"
        "            [--request-threads=N] [--rate-mbps=N] [--burst-mb=N]\n"
        "            [--max-in-flight=N] [--stats-file=PATH] "
        "[--trace=FILE]\n"
        "            [--metrics-socket=PATH] [--drain-ms=N]\n"
        "            [--log-level=debug|info|warn|error|off]\n"
        "Serves compress/decompress/decompress_range/inspect requests\n"
        "over the unix-domain socket until `fpcc shutdown` or SIGTERM;\n"
        "--metrics-socket adds HTTP GET /metrics and /healthz.\n");
    return fpc::ExitCodeOf(fpc::Errc::kUsage);
}

uint64_t
ParseCount(const std::string& text, const char* flag)
{
    try {
        size_t pos = 0;
        const uint64_t value = std::stoull(text, &pos);
        if (pos != text.size()) throw std::invalid_argument(text);
        return value;
    } catch (const std::exception&) {
        throw fpc::UsageError(std::string(flag) + ": not a number: " + text);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        fpc::ServerConfig config;
        std::string stats_path;
        std::string trace_path;
        std::string metrics_socket;
        uint64_t drain_ms = 5000;
        fpc::Telemetry stats_sink;
        fpc::TraceSink trace_sink;
        // The daemon is the one front-end where a request log is the
        // point: default to info unless the environment or --log-level
        // says otherwise (the library default stays warn).
        if (std::getenv("FPC_LOG_LEVEL") == nullptr) {
            fpc::SetLogThreshold(fpc::LogLevel::kInfo);
        }

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char* flag) {
                return arg.substr(std::strlen(flag));
            };
            if (arg.rfind("--socket=", 0) == 0) {
                config.socket_path = value("--socket=");
            } else if (arg.rfind("--workers=", 0) == 0) {
                config.service.workers = static_cast<int>(
                    ParseCount(value("--workers="), "--workers"));
            } else if (arg.rfind("--queue=", 0) == 0) {
                config.service.queue_capacity = static_cast<size_t>(
                    ParseCount(value("--queue="), "--queue"));
            } else if (arg.rfind("--request-threads=", 0) == 0) {
                config.service.request_threads =
                    static_cast<int>(ParseCount(value("--request-threads="),
                                                "--request-threads"));
            } else if (arg.rfind("--rate-mbps=", 0) == 0) {
                config.service.default_qos.rate_bytes_per_sec =
                    ParseCount(value("--rate-mbps="), "--rate-mbps") *
                    1000000;
            } else if (arg.rfind("--burst-mb=", 0) == 0) {
                config.service.default_qos.burst_bytes =
                    ParseCount(value("--burst-mb="), "--burst-mb") << 20;
            } else if (arg.rfind("--max-in-flight=", 0) == 0) {
                config.service.default_qos.max_in_flight =
                    static_cast<uint32_t>(ParseCount(
                        value("--max-in-flight="), "--max-in-flight"));
            } else if (arg.rfind("--stats-file=", 0) == 0) {
                stats_path = value("--stats-file=");
                if (stats_path.empty()) return Usage();
            } else if (arg.rfind("--trace=", 0) == 0) {
                trace_path = value("--trace=");
                if (trace_path.empty()) return Usage();
            } else if (arg.rfind("--metrics-socket=", 0) == 0) {
                metrics_socket = value("--metrics-socket=");
                if (metrics_socket.empty()) return Usage();
            } else if (arg.rfind("--drain-ms=", 0) == 0) {
                drain_ms = ParseCount(value("--drain-ms="), "--drain-ms");
            } else if (arg.rfind("--log-level=", 0) == 0) {
                const std::string name = value("--log-level=");
                const fpc::LogLevel level = fpc::ParseLogLevel(name);
                if (name != fpc::LogLevelName(level)) {
                    throw fpc::UsageError("--log-level: unknown level: " +
                                          name);
                }
                fpc::SetLogThreshold(level);
            } else {
                return Usage();
            }
        }
        if (config.socket_path.empty()) return Usage();
        config.service.telemetry = &stats_sink;
        if (!trace_path.empty()) config.service.trace = &trace_sink;

        std::signal(SIGINT, OnSignal);
        std::signal(SIGTERM, OnSignal);
        std::signal(SIGPIPE, SIG_IGN);

        fpc::SocketServer server(config);
        std::unique_ptr<fpc::MetricsHttpServer> exporter;
        if (!metrics_socket.empty()) {
            exporter = std::make_unique<fpc::MetricsHttpServer>(
                metrics_socket,
                [] { return fpc::MetricsRegistry::Global().Exposition(); },
                [&server] { return server.HealthJson(); });
        }
        std::fprintf(stderr,
                     "fpcd: listening on %s (%d worker(s), queue %zu)\n",
                     server.Path().c_str(), server.service().workers(),
                     config.service.queue_capacity);

        // Wait for `fpcc shutdown` or a signal; signals cannot wake a
        // condition variable, so the wait polls in short slices.
        while (!server.WaitForShutdownFor(std::chrono::milliseconds(200))) {
            if (g_signalled != 0) {
                std::fprintf(stderr, "fpcd: signalled, draining\n");
                break;
            }
        }
        // Graceful either way: answer every accepted request before
        // exiting, bounded by --drain-ms.
        server.Drain(std::chrono::milliseconds(drain_ms));
        if (exporter != nullptr) exporter->Stop();

        // Leave a final snapshot behind even when nothing scraped us.
        const std::string exposition =
            fpc::MetricsRegistry::Global().Exposition();
        std::fwrite(exposition.data(), 1, exposition.size(), stderr);

        if (!stats_path.empty()) {
            std::FILE* out = std::fopen(stats_path.c_str(), "w");
            if (out == nullptr) {
                throw fpc::UsageError("cannot open " + stats_path);
            }
            std::fprintf(out, "%s\n", stats_sink.ToJson().c_str());
            std::fclose(out);
        }
        if (!trace_path.empty() && !trace_sink.WriteJson(trace_path)) {
            throw fpc::UsageError("cannot write " + trace_path);
        }
        return fpc::ExitCodeOf(fpc::Errc::kOk);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fpcd: %s\n", e.what());
        return fpc::ExitCodeOf(fpc::CurrentErrc());
    }
}
