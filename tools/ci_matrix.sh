#!/usr/bin/env sh
# Build-and-test matrix for CI-style local runs:
#
#   tools/ci_matrix.sh [jobs]
#
# Configurations:
#   default        — Release, telemetry hooks compiled in (the shipping
#                    config). Runs the full suite, which includes the
#                    standing perf-regression gate (ctest -L bench:
#                    bench_regress vs the last committed BENCH_pr<N>.json)
#                    and the span-tracer reconciliation (ctest -L
#                    telemetry), then exports a figure-bench timeline via
#                    FPC_BENCH_TRACE and schema-checks the fpc.trace.v1
#                    output.
#   telemetry-off  — -DFPC_TELEMETRY=OFF: every hook (telemetry *and* the
#                    span tracer) compiles to a no-op; proves the API
#                    still builds and the wire format is unchanged
#                    (telemetry_test asserts empty sinks, trace_test
#                    asserts empty-but-valid trace exports, the
#                    golden-checksum tests pin the bytes). The bench gate
#                    still runs: ratios are still compared, throughput is
#                    skipped because the recorded telemetry flag differs
#                    from the committed baseline.
#   forced-scalar  — the default build re-tested with FPC_FORCE_SCALAR=1:
#                    every kernel dispatches to the portable reference
#                    implementations, proving the wire format (golden
#                    checksums) and the whole suite hold without vector
#                    kernels at runtime. Reuses the default build tree —
#                    dispatch is a runtime decision.
#   simd-off       — -DFPC_SIMD=OFF: the vector translation units are not
#                    compiled at all (CompiledIsaLevels() == "scalar");
#                    proves the scalar-only build is complete, not just
#                    reachable, for targets without x86 vector extensions.
#   sanitize       — ASan+UBSan over the memory-sensitive test subset,
#                    which includes the SIMD kernel equivalence + ISA
#                    golden matrix (ctest -L sanitize covers -L simd).
#
# Each configuration builds into build-matrix/<name> so the normal
# ./build tree is left alone. Exits non-zero on the first failure.

set -eu

jobs="${1:-2}"
root="$(cd "$(dirname "$0")/.." && pwd)"
out="${root}/build-matrix"

run_config() {
    name="$1"; shift
    echo "==> [${name}] configure: $*"
    cmake -B "${out}/${name}" -S "${root}" "$@" >/dev/null
    echo "==> [${name}] build"
    cmake --build "${out}/${name}" -j "${jobs}" >/dev/null
    echo "==> [${name}] test"
}

run_config default -DFPC_WERROR=ON
ctest --test-dir "${out}/default" --output-on-failure -j "${jobs}"

# Trace-export smoke: drive one figure bench with FPC_BENCH_TRACE on a
# tiny corpus and validate the resulting Chrome trace document.
echo "==> [default] trace export"
(cd "${out}/default/bench" && \
    FPC_BENCH_VALUES=8192 FPC_BENCH_SCALE=0.05 FPC_BENCH_RUNS=1 \
    FPC_BENCH_TRACE="${out}/default/ci_trace.json" \
    ./bench_fig12_cpu_sp_comp >/dev/null)
python3 "${root}/tools/check_stats_schema.py" "${out}/default/ci_trace.json"

# Forced-scalar dispatch over the default build: same binaries, kernel
# tables pinned to the portable reference. The bench gate still runs;
# compare_bench skips throughput (the recorded ISA differs from the
# committed baseline) and keeps gating the ratios.
echo "==> [forced-scalar] test (default build, FPC_FORCE_SCALAR=1)"
FPC_FORCE_SCALAR=1 ctest --test-dir "${out}/default" \
    --output-on-failure -j "${jobs}"

run_config simd-off -DFPC_WERROR=ON -DFPC_SIMD=OFF
ctest --test-dir "${out}/simd-off" --output-on-failure -j "${jobs}"

run_config telemetry-off -DFPC_WERROR=ON -DFPC_TELEMETRY=OFF
ctest --test-dir "${out}/telemetry-off" --output-on-failure -j "${jobs}"

run_config sanitize -DFPC_SANITIZE=ON -DFPC_BUILD_BENCH=OFF \
    -DFPC_BUILD_EXAMPLES=OFF
ctest --test-dir "${out}/sanitize" -L sanitize --output-on-failure \
    -j "${jobs}"

echo "==> matrix OK (default, forced-scalar, simd-off, telemetry-off," \
    "sanitize)"
