#!/usr/bin/env sh
# Build-and-test matrix for CI-style local runs:
#
#   tools/ci_matrix.sh [jobs]
#
# Configurations:
#   default        — Release, telemetry hooks compiled in (the shipping
#                    config). Runs the full suite, which includes the
#                    standing perf-regression gate (ctest -L bench:
#                    bench_regress vs the last committed BENCH_pr<N>.json)
#                    and the span-tracer reconciliation (ctest -L
#                    telemetry), then exports a figure-bench timeline via
#                    FPC_BENCH_TRACE and schema-checks the fpc.trace.v1
#                    output.
#   telemetry-off  — -DFPC_TELEMETRY=OFF: every hook (telemetry *and* the
#                    span tracer) compiles to a no-op; proves the API
#                    still builds and the wire format is unchanged
#                    (telemetry_test asserts empty sinks, trace_test
#                    asserts empty-but-valid trace exports, the
#                    golden-checksum tests pin the bytes). The bench gate
#                    still runs: ratios are still compared, throughput is
#                    skipped because the recorded telemetry flag differs
#                    from the committed baseline.
#   forced-scalar  — the default build re-tested with FPC_FORCE_SCALAR=1:
#                    every kernel dispatches to the portable reference
#                    implementations, proving the wire format (golden
#                    checksums) and the whole suite hold without vector
#                    kernels at runtime. Reuses the default build tree —
#                    dispatch is a runtime decision.
#   simd-off       — -DFPC_SIMD=OFF: the vector translation units are not
#                    compiled at all (CompiledIsaLevels() == "scalar");
#                    proves the scalar-only build is complete, not just
#                    reachable, for targets without x86 vector extensions.
#   sanitize       — ASan+UBSan over the memory-sensitive test subset,
#                    which includes the SIMD kernel equivalence + ISA
#                    golden matrix (ctest -L sanitize covers -L simd).
#   tsan           — -DFPC_TSAN=ON over the threading subset (ctest -L
#                    thread): the parallel stream decoder's claim/deliver
#                    window and early-abandonment teardown, plus the
#                    service scheduler (worker pool, per-tenant queues,
#                    round-robin dispatch, arena pool) and the daemon's
#                    concurrent connection handling (protocol_test).
#
# The default leg also runs a mode=auto smoke (compress a mixed corpus
# adaptively, inspect the v3 per-chunk table, decode on the gpusim
# backend, byte-compare, and schema-check the v6 adaptive telemetry) and
# a service daemon smoke: fpcd on a unix socket, concurrent fpcc
# roundtrips for all four algorithms plus mode=auto on the gpusim
# backend, every container byte-compared against the library path, and
# the daemon's v6 stats (per-tenant service block) schema-checked.
#
# Each configuration builds into build-matrix/<name> so the normal
# ./build tree is left alone. Exits non-zero on the first failure.

set -eu

jobs="${1:-2}"
root="$(cd "$(dirname "$0")/.." && pwd)"
out="${root}/build-matrix"

run_config() {
    name="$1"; shift
    echo "==> [${name}] configure: $*"
    cmake -B "${out}/${name}" -S "${root}" "$@" >/dev/null
    echo "==> [${name}] build"
    cmake --build "${out}/${name}" -j "${jobs}" >/dev/null
    echo "==> [${name}] test"
}

run_config default -DFPC_WERROR=ON
ctest --test-dir "${out}/default" --output-on-failure -j "${jobs}"

# Trace-export smoke: drive one figure bench with FPC_BENCH_TRACE on a
# tiny corpus and validate the resulting Chrome trace document.
echo "==> [default] trace export"
(cd "${out}/default/bench" && \
    FPC_BENCH_VALUES=8192 FPC_BENCH_SCALE=0.05 FPC_BENCH_RUNS=1 \
    FPC_BENCH_TRACE="${out}/default/ci_trace.json" \
    ./bench_fig12_cpu_sp_comp >/dev/null)
python3 "${root}/tools/check_stats_schema.py" "${out}/default/ci_trace.json"

# Large-file streaming smoke: a >=256 MiB seekable v2 stream decoded
# through the fd (pread) ByteSource by the bounded worker pool. Peak RSS
# of the decode must stay well below the compressed size — the pool holds
# a fixed number of frames in flight, never the file. A ranged read out
# of the same file then exercises the seek index end to end and its
# fpc.telemetry.v6 ranged counters are schema-checked.
echo "==> [default] large-file streaming smoke"
large_dir="${out}/default/large_smoke"
rm -rf "${large_dir}"
mkdir -p "${large_dir}"
# Incompressible input, so the container is the same order of size and
# the RSS bound is meaningful: 272 MiB input -> >=256 MiB stream.
dd if=/dev/urandom of="${large_dir}/input.bin" bs=1048576 count=272 \
    2>/dev/null
"${out}/default/fpczip" -c -a SPspeed --frame-bytes=8m \
    "${large_dir}/input.bin" "${large_dir}/input.fpcz"
packed_bytes=$(wc -c < "${large_dir}/input.fpcz")
if [ "${packed_bytes}" -lt 268435456 ]; then
    echo "large-file smoke: stream only ${packed_bytes} bytes (<256 MiB)"
    exit 1
fi
# Decode via the pool + pread source; fail if peak RSS of the child
# reaches half of the compressed size (8 MiB frames, 2 workers, 4 frames
# in flight: tens of MiB expected against a ~272 MiB file).
python3 - "${out}/default/fpczip" "${large_dir}" "${packed_bytes}" <<'EOF'
import resource, subprocess, sys
fpczip, work, packed = sys.argv[1], sys.argv[2], int(sys.argv[3])
rc = subprocess.run([fpczip, "cat", "--workers=2", "--read=pread",
                     f"{work}/input.fpcz", f"{work}/restored.bin"]).returncode
if rc != 0:
    sys.exit(f"large-file smoke: fpczip cat exited {rc}")
peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024
cap = packed // 2
print(f"large-file smoke: peak RSS {peak // 1048576} MiB "
      f"(cap {cap // 1048576} MiB, stream {packed // 1048576} MiB)")
if peak >= cap:
    sys.exit("large-file smoke: peak RSS reached half the stream size")
EOF
cmp "${large_dir}/input.bin" "${large_dir}/restored.bin"
# Ranged read out of the middle (1 MiB of floats), checked byte-for-byte
# against the same slice of the input, with the ranged telemetry block
# validated by the schema checker.
"${out}/default/fpczip" cat --range=30000000:262144 --read=pread \
    "--stats-file=${large_dir}/ranged_stats.json" \
    "${large_dir}/input.fpcz" "${large_dir}/slice.bin"
dd if="${large_dir}/input.bin" of="${large_dir}/slice_want.bin" bs=4 \
    skip=30000000 count=262144 2>/dev/null
cmp "${large_dir}/slice.bin" "${large_dir}/slice_want.bin"
python3 "${root}/tools/check_stats_schema.py" \
    "${large_dir}/ranged_stats.json"
rm -rf "${large_dir}"

# mode=auto smoke: a mixed-content corpus (smooth ramp + random noise,
# so chunks genuinely pick different pipelines) compressed adaptively,
# inspected, cross-backend decoded, byte-compared, and its adaptive
# telemetry block schema-checked.
echo "==> [default] mode=auto smoke"
auto_dir="${out}/default/auto_smoke"
rm -rf "${auto_dir}"
mkdir -p "${auto_dir}"
python3 - "${auto_dir}/mixed.bin" <<'EOF'
import random, struct, sys
random.seed(7)
out = []
for region in range(12):
    if region % 2 == 0:
        out += [1.0 + i / 4096.0 for i in range(4096)]
    else:
        out += [random.uniform(1.0, 2.0) for _ in range(4096)]
with open(sys.argv[1], "wb") as f:
    f.write(struct.pack(f"<{len(out)}f", *out))
EOF
"${out}/default/fpczip" -c --mode=auto \
    "--stats-file=${auto_dir}/auto_stats.json" \
    "${auto_dir}/mixed.bin" "${auto_dir}/mixed.fpcz"
"${out}/default/fpczip" inspect "${auto_dir}/mixed.fpcz" \
    | grep -q '"mode": "auto"'
"${out}/default/fpczip" -d --backend=gpusim:4090 \
    "${auto_dir}/mixed.fpcz" "${auto_dir}/mixed.out"
cmp "${auto_dir}/mixed.bin" "${auto_dir}/mixed.out"
python3 "${root}/tools/check_stats_schema.py" "${auto_dir}/auto_stats.json"
rm -rf "${auto_dir}"

# Service daemon smoke: fpcd on a unix socket serving concurrent fpcc
# clients — all four fixed algorithms plus mode=auto on the gpusim
# backend, one tenant each. Every compressed container is byte-compared
# against the library path (fpczip with the same knobs), every
# roundtrip against the input. The daemon's stats (live via `fpcc
# stats` and the --stats-file written at shutdown) carry the v6
# per-tenant service block and are schema-checked.
echo "==> [default] service daemon smoke"
svc_dir="${out}/default/service_smoke"
rm -rf "${svc_dir}"
mkdir -p "${svc_dir}"
python3 - "${svc_dir}/in.bin" <<'EOF'
import random, struct, sys
random.seed(11)
out = []
for region in range(8):
    if region % 2 == 0:
        out += [1.0 + i / 4096.0 for i in range(4096)]
    else:
        out += [random.uniform(1.0, 2.0) for _ in range(4096)]
with open(sys.argv[1], "wb") as f:
    f.write(struct.pack(f"<{len(out)}f", *out))
EOF
svc_sock="${svc_dir}/fpcd.sock"
"${out}/default/fpcd" --socket="${svc_sock}" --workers=4 \
    "--stats-file=${svc_dir}/fpcd_stats.json" &
fpcd_pid=$!
tries=0
while [ ! -S "${svc_sock}" ]; do
    tries=$((tries + 1))
    if [ "${tries}" -gt 100 ]; then
        echo "service smoke: fpcd socket never appeared"
        exit 1
    fi
    sleep 0.1
done
svc_pids=""
for algo in SPspeed SPratio DPspeed DPratio; do
    (
        set -eu
        "${out}/default/fpcc" "--socket=${svc_sock}" \
            "--tenant=${algo}" compress -a "${algo}" \
            "${svc_dir}/in.bin" "${svc_dir}/${algo}.fpcz"
        "${out}/default/fpczip" -c -a "${algo}" \
            "${svc_dir}/in.bin" "${svc_dir}/${algo}.want"
        cmp "${svc_dir}/${algo}.fpcz" "${svc_dir}/${algo}.want"
        "${out}/default/fpcc" "--socket=${svc_sock}" \
            "--tenant=${algo}" decompress \
            "${svc_dir}/${algo}.fpcz" "${svc_dir}/${algo}.out"
        cmp "${svc_dir}/in.bin" "${svc_dir}/${algo}.out"
    ) &
    svc_pids="${svc_pids} $!"
done
(
    set -eu
    "${out}/default/fpcc" "--socket=${svc_sock}" --tenant=auto \
        --backend=gpusim:4090 compress --mode=auto \
        "${svc_dir}/in.bin" "${svc_dir}/auto.fpcz"
    "${out}/default/fpczip" -c --mode=auto --backend=gpusim:4090 \
        "${svc_dir}/in.bin" "${svc_dir}/auto.want"
    cmp "${svc_dir}/auto.fpcz" "${svc_dir}/auto.want"
    "${out}/default/fpcc" "--socket=${svc_sock}" --tenant=auto \
        decompress "${svc_dir}/auto.fpcz" "${svc_dir}/auto.out"
    cmp "${svc_dir}/in.bin" "${svc_dir}/auto.out"
) &
svc_pids="${svc_pids} $!"
for pid in ${svc_pids}; do
    wait "${pid}"
done
"${out}/default/fpcc" "--socket=${svc_sock}" stats \
    > "${svc_dir}/live_stats.json"
python3 "${root}/tools/check_stats_schema.py" "${svc_dir}/live_stats.json"
"${out}/default/fpcc" "--socket=${svc_sock}" shutdown
wait "${fpcd_pid}"
python3 "${root}/tools/check_stats_schema.py" "${svc_dir}/fpcd_stats.json"
rm -rf "${svc_dir}"

# Live-metrics + drain-reconcile smoke: fpcd with a --metrics-socket
# exporter, driven by bench_service in socket mode (polite tenants over
# real daemon connections). Mid-run the HTTP /metrics endpoint is
# scraped with a 50 ms latency budget and schema-checked; after the
# load settles a final scrape is taken, the daemon is drained with
# SIGTERM, and the scraped fpc_service_requests_total samples must
# reconcile *exactly* with the per-tenant request totals in the v6
# telemetry the daemon wrote to --stats-file at shutdown.
echo "==> [default] live metrics + drain reconcile"
met_dir="${out}/default/metrics_smoke"
rm -rf "${met_dir}"
mkdir -p "${met_dir}"
met_sock="${met_dir}/fpcd.sock"
met_http="${met_dir}/metrics.sock"
"${out}/default/fpcd" --socket="${met_sock}" --workers=4 --queue=64 \
    --metrics-socket="${met_http}" --drain-ms=10000 \
    "--stats-file=${met_dir}/fpcd_stats.json" \
    2> "${met_dir}/fpcd_stderr.log" &
met_pid=$!
tries=0
while [ ! -S "${met_sock}" ] || [ ! -S "${met_http}" ]; do
    tries=$((tries + 1))
    if [ "${tries}" -gt 100 ]; then
        echo "metrics smoke: fpcd sockets never appeared"
        exit 1
    fi
    sleep 0.1
done
FPC_BENCH_SERVICE_SOCKET="${met_sock}" \
    FPC_BENCH_SERVICE_TENANTS=4 FPC_BENCH_SERVICE_REQUESTS=32 \
    FPC_BENCH_SERVICE_VALUES=65536 \
    "${out}/default/bench/bench_service" "${met_dir}/bench.json" \
    2> "${met_dir}/bench_stderr.log" &
bench_pid=$!
sleep 0.3
# Timed mid-run scrape over the unix-socket HTTP endpoint (python
# stdlib only): the exporter must answer inside the 50 ms budget even
# while every worker is busy, and the body must validate.
python3 - "${met_http}" "${met_dir}/scrape_midrun.txt" 50 <<'EOF'
import socket, sys, time
path, out, budget_ms = sys.argv[1], sys.argv[2], float(sys.argv[3])
t0 = time.monotonic()
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
s.sendall(b"GET /metrics HTTP/1.1\r\nHost: fpcd\r\n"
          b"Connection: close\r\n\r\n")
data = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
elapsed_ms = (time.monotonic() - t0) * 1e3
s.close()
head, _, body = data.partition(b"\r\n\r\n")
if not head.startswith(b"HTTP/1.1 200"):
    sys.exit(f"metrics smoke: scrape returned {head.splitlines()[0]!r}")
with open(out, "wb") as f:
    f.write(body)
print(f"metrics smoke: /metrics answered in {elapsed_ms:.1f} ms")
if elapsed_ms > budget_ms:
    sys.exit(f"metrics smoke: scrape took {elapsed_ms:.1f} ms "
             f"(budget {budget_ms:.0f} ms)")
EOF
python3 "${root}/tools/check_stats_schema.py" \
    "${met_dir}/scrape_midrun.txt"
wait "${bench_pid}"
python3 "${root}/tools/check_stats_schema.py" "${met_dir}/bench.json"
# Admin surface through the framed protocol: the exposition and the
# health document are also served over the daemon socket itself.
"${out}/default/fpcc" "--socket=${met_sock}" metrics \
    > "${met_dir}/fpcc_metrics.txt"
python3 "${root}/tools/check_stats_schema.py" \
    "${met_dir}/fpcc_metrics.txt"
"${out}/default/fpcc" "--socket=${met_sock}" health \
    | grep -q '"status": "ok"'
"${out}/default/fpcc" "--socket=${met_sock}" server_stats \
    | grep -q '"protocol_errors": 0'
# Final scrape with the daemon idle, then a SIGTERM drain; the
# shutdown telemetry must agree with the last scrape to the request.
python3 - "${met_http}" "${met_dir}/scrape_final.txt" 5000 <<'EOF'
import socket, sys, time
path, out, budget_ms = sys.argv[1], sys.argv[2], float(sys.argv[3])
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
s.sendall(b"GET /metrics HTTP/1.1\r\nHost: fpcd\r\n"
          b"Connection: close\r\n\r\n")
data = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
head, _, body = data.partition(b"\r\n\r\n")
if not head.startswith(b"HTTP/1.1 200"):
    sys.exit("metrics smoke: final scrape failed")
with open(out, "wb") as f:
    f.write(body)
EOF
kill -TERM "${met_pid}"
wait "${met_pid}"
python3 "${root}/tools/check_stats_schema.py" "${met_dir}/fpcd_stats.json"
grep -q '"event": "drain_begin"' "${met_dir}/fpcd_stderr.log"
python3 - "${met_dir}/scrape_final.txt" "${met_dir}/fpcd_stats.json" <<'EOF'
import json, re, sys
scrape_path, stats_path = sys.argv[1], sys.argv[2]
scraped = 0
sample = re.compile(r'^fpc_service_requests_total(?:\{[^}]*\})? (\d+)$')
with open(scrape_path) as f:
    for line in f:
        m = sample.match(line.strip())
        if m:
            scraped += int(m.group(1))
doc = None
with open(stats_path) as f:
    for line in f:
        line = line.strip()
        if line.startswith("{"):
            parsed = json.loads(line)
            if parsed.get("schema") == "fpc.telemetry.v6":
                doc = parsed
if doc is None:
    sys.exit("metrics smoke: no telemetry document in the stats file")
telemetry = sum(t["requests"] for t in doc["service"]["tenants"].values())
mirror = sum(v for k, v in doc["metrics_snapshot"]["counters"].items()
             if k.startswith("fpc_service_requests_total"))
print(f"metrics smoke: scrape={scraped} telemetry={telemetry} "
      f"snapshot={mirror} completed requests")
if scraped == 0 or scraped != telemetry or mirror != telemetry:
    sys.exit("metrics smoke: scraped request totals do not reconcile "
             "with the shutdown telemetry")
EOF
rm -rf "${met_dir}"

# Forced-scalar dispatch over the default build: same binaries, kernel
# tables pinned to the portable reference. The bench gate still runs;
# compare_bench skips throughput (the recorded ISA differs from the
# committed baseline) and keeps gating the ratios.
echo "==> [forced-scalar] test (default build, FPC_FORCE_SCALAR=1)"
FPC_FORCE_SCALAR=1 ctest --test-dir "${out}/default" \
    --output-on-failure -j "${jobs}"

run_config simd-off -DFPC_WERROR=ON -DFPC_SIMD=OFF
ctest --test-dir "${out}/simd-off" --output-on-failure -j "${jobs}"

run_config telemetry-off -DFPC_WERROR=ON -DFPC_TELEMETRY=OFF
ctest --test-dir "${out}/telemetry-off" --output-on-failure -j "${jobs}"

run_config sanitize -DFPC_SANITIZE=ON -DFPC_BUILD_BENCH=OFF \
    -DFPC_BUILD_EXAMPLES=OFF
ctest --test-dir "${out}/sanitize" -L sanitize --output-on-failure \
    -j "${jobs}"

run_config tsan -DFPC_TSAN=ON -DFPC_BUILD_BENCH=OFF \
    -DFPC_BUILD_EXAMPLES=OFF
ctest --test-dir "${out}/tsan" -L thread --output-on-failure -j "${jobs}"

echo "==> matrix OK (default, forced-scalar, simd-off, telemetry-off," \
    "sanitize, tsan)"
