#!/usr/bin/env sh
# Build-and-test matrix for CI-style local runs:
#
#   tools/ci_matrix.sh [jobs]
#
# Configurations:
#   default        — Release, telemetry hooks compiled in (the shipping config)
#   telemetry-off  — -DFPC_TELEMETRY=OFF: every hook compiles to a no-op;
#                    proves the API still builds and the wire format is
#                    unchanged (telemetry_test asserts empty sinks, the
#                    golden-checksum tests pin the bytes)
#   sanitize       — ASan+UBSan over the memory-sensitive test subset
#
# Each configuration builds into build-matrix/<name> so the normal
# ./build tree is left alone. Exits non-zero on the first failure.

set -eu

jobs="${1:-2}"
root="$(cd "$(dirname "$0")/.." && pwd)"
out="${root}/build-matrix"

run_config() {
    name="$1"; shift
    echo "==> [${name}] configure: $*"
    cmake -B "${out}/${name}" -S "${root}" "$@" >/dev/null
    echo "==> [${name}] build"
    cmake --build "${out}/${name}" -j "${jobs}" >/dev/null
    echo "==> [${name}] test"
}

run_config default -DFPC_WERROR=ON
ctest --test-dir "${out}/default" --output-on-failure -j "${jobs}"

run_config telemetry-off -DFPC_WERROR=ON -DFPC_TELEMETRY=OFF
ctest --test-dir "${out}/telemetry-off" --output-on-failure -j "${jobs}"

run_config sanitize -DFPC_SANITIZE=ON -DFPC_BUILD_BENCH=OFF \
    -DFPC_BUILD_EXAMPLES=OFF
ctest --test-dir "${out}/sanitize" -L sanitize --output-on-failure \
    -j "${jobs}"

echo "==> matrix OK (default, telemetry-off, sanitize)"
